"""Cross-cutting training-dynamics checks that tie subsystems together."""

import numpy as np
import pytest

from repro.core import Hyper
from repro.data import make_blobs
from repro.nn import MLP
from repro.optim import StepDecay
from repro.sim import ClusterConfig, SimulatedTrainer


@pytest.fixture(scope="module")
def ds():
    return make_blobs(n_samples=600, num_classes=5, dim=16, sep=1.6, noise=1.1, seed=4)


@pytest.fixture(scope="module")
def factory():
    return lambda: MLP(16, (32,), 5, seed=3)


def run(ds, factory, method="dgs", **kw):
    defaults = dict(
        cluster=ClusterConfig.with_bandwidth(4, 10, compute_mean_s=0.02),
        batch_size=32,
        total_iterations=220,
        hyper=Hyper(lr=0.1, momentum=0.7, ratio=0.1, min_sparse_size=0),
        seed=0,
    )
    defaults.update(kw)
    return SimulatedTrainer(method, factory, ds, **defaults).run()


class TestLRSchedule:
    def test_step_decay_reduces_late_updates(self, ds, factory):
        """With an immediate ×0.001 decay, training barely moves."""
        tiny = run(
            ds, factory,
            schedule=StepDecay(0.1, milestones=(0.0,), factor=0.001),
        )
        normal = run(ds, factory)
        assert tiny.final_loss > normal.final_loss


class TestCompressionAccounting:
    def test_upload_ratio_tracks_R(self, ds, factory):
        """Upload compression ≈ dense/(2R·dense) = 1/(2R) for COO."""
        r = run(ds, factory, hyper=Hyper(lr=0.1, momentum=0.7, ratio=0.02, min_sparse_size=0))
        ratio = r.upload_dense_bytes / r.upload_bytes
        assert 10 < ratio < 30  # ideal 25, headers/small layers eat a bit

    def test_download_cheaper_with_secondary(self, ds, factory):
        base = run(ds, factory, secondary_compression=False)
        sec = run(ds, factory, secondary_compression=True)
        assert sec.download_bytes < base.download_bytes

    def test_dense_equiv_consistent_across_methods(self, ds, factory):
        """Dense-equivalent upload bytes depend only on model size and
        iteration count — identical for every method."""
        a = run(ds, factory, method="asgd")
        b = run(ds, factory, method="dgs")
        assert a.upload_dense_bytes == b.upload_dense_bytes


class TestVirtualTime:
    def test_makespan_scales_with_compute_mean(self, ds, factory):
        slow = run(ds, factory, cluster=ClusterConfig.with_bandwidth(4, 10, compute_mean_s=0.2))
        fast = run(ds, factory, cluster=ClusterConfig.with_bandwidth(4, 10, compute_mean_s=0.02))
        assert slow.makespan_s > 4 * fast.makespan_s

    def test_equal_iterations_regardless_of_bandwidth(self, ds, factory):
        a = run(ds, factory, cluster=ClusterConfig.with_bandwidth(4, 10, compute_mean_s=0.02))
        b = run(ds, factory, cluster=ClusterConfig.with_bandwidth(4, 0.001, compute_mean_s=0.02))
        assert a.total_iterations == b.total_iterations
        assert b.makespan_s > a.makespan_s

    def test_loss_vs_time_and_step_agree_on_values(self, ds, factory):
        r = run(ds, factory)
        np.testing.assert_array_equal(r.loss_vs_step.ys, r.loss_vs_time.ys)


class TestWorkerEquity:
    def test_homogeneous_workers_share_iterations(self, ds, factory):
        trainer = SimulatedTrainer(
            "dgs", factory, ds,
            ClusterConfig.with_bandwidth(4, 10, compute_mean_s=0.05),
            batch_size=32, total_iterations=200,
            hyper=Hyper(lr=0.1, momentum=0.7, ratio=0.1, min_sparse_size=0), seed=0,
        )
        trainer.run()
        counts = [w.iteration for w in trainer.workers]
        assert max(counts) - min(counts) <= 5  # near-even split

    def test_straggler_contributes_less(self, ds, factory):
        from repro.sim import ComputeModel, LinkModel

        cluster = ClusterConfig(
            num_workers=4,
            compute=ComputeModel(mean_s=0.05, jitter=0.0, heterogeneity=0.0),
            uplink=LinkModel.gbps(10),
            downlink=LinkModel.gbps(10),
            seed=0,
        )
        trainer = SimulatedTrainer(
            "asgd", factory, ds, cluster, batch_size=32, total_iterations=200,
            hyper=Hyper(lr=0.1), seed=0,
        )
        # make worker 0 three times slower, bypassing the heterogeneity RNG
        trainer._speed = np.array([3.0, 1.0, 1.0, 1.0])
        trainer.run()
        counts = [w.iteration for w in trainer.workers]
        assert counts[0] < min(counts[1:]) * 0.6
