"""Structured run logging (JSON-lines) for training telemetry.

Trainers accept a :class:`RunLogger`; every applied update emits one
record (step, virtual time, worker, loss, staleness, bytes).  Records go
to memory and optionally to a ``.jsonl`` file, and can be reloaded into
:class:`~repro.metrics.curves.Curve` objects for plotting — the
offline-friendly equivalent of a TensorBoard scalar stream.

.. deprecated::
    :class:`repro.obs.ObsLogger` supersedes this class: same
    ``log_step`` signature (trainers accept either), plus span/metric
    records in the same stream and the ``python -m repro.obs``
    exporters.  ``RunLogger`` stays for existing call sites; new code
    should use ``repro.obs``.

Use it as a context manager (``with RunLogger(path) as log: ...``) or
call :meth:`RunLogger.close` — the file handle is real and records are
flushed on every write, so a crashed run still leaves a readable log.
"""

from __future__ import annotations

import json
import pathlib
from typing import IO, Any, Iterable, Mapping

from .curves import Curve

__all__ = ["RunLogger", "load_runlog"]


class RunLogger:
    """Collects per-step records; optionally mirrors them to a JSONL file."""

    def __init__(self, path: "str | pathlib.Path | None" = None, meta: "Mapping[str, Any] | None" = None) -> None:
        self.records: list[dict[str, Any]] = []
        self._fh: IO[str] | None = None
        self.path = pathlib.Path(path) if path is not None else None
        if self.path is not None:
            self._fh = open(self.path, "w")
        if meta:
            self.log(record_type="meta", **dict(meta))

    # ------------------------------------------------------------------
    def log(self, record_type: str = "step", **fields: Any) -> None:
        record = {"type": record_type, **fields}
        self.records.append(record)
        if self._fh is not None:
            self._fh.write(json.dumps(record) + "\n")
            self._fh.flush()

    def log_step(
        self,
        step: int,
        loss: float,
        time_s: float | None = None,
        worker: int | None = None,
        staleness: int | None = None,
        **extra: Any,
    ) -> None:
        fields: dict[str, Any] = {"step": step, "loss": float(loss)}
        if time_s is not None:
            fields["time_s"] = float(time_s)
        if worker is not None:
            fields["worker"] = int(worker)
        if staleness is not None:
            fields["staleness"] = int(staleness)
        fields.update(extra)
        self.log(record_type="step", **fields)

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunLogger":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def steps(self) -> "list[dict[str, Any]]":
        return [r for r in self.records if r.get("type") == "step"]

    def curve(self, y: str = "loss", x: str = "step", name: str | None = None) -> Curve:
        """Extract a Curve of field ``y`` against field ``x``."""
        c = Curve(name or f"{y}_vs_{x}")
        for r in self.steps():
            if x in r and y in r:
                c.add(float(r[x]), float(r[y]))
        return c


def load_runlog(path: "str | pathlib.Path") -> RunLogger:
    """Reload a ``.jsonl`` run log written by :class:`RunLogger`."""
    logger = RunLogger()
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                logger.records.append(json.loads(line))
    return logger
