"""Reverse-mode autodiff substrate (NumPy-backed)."""

from .gradcheck import gradcheck, numerical_gradient
from .ops import avg_pool2d, conv2d, global_avg_pool2d, im2col, col2im, max_pool2d
from .tensor import Tensor, no_grad, is_grad_enabled

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "gradcheck",
    "numerical_gradient",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "im2col",
    "col2im",
]
