"""Fixture: classic ABBA deadlock between two lock-owning classes.

``Ledger.transfer`` calls ``Auditor.observe`` while holding the ledger
lock; ``Auditor.reconcile`` calls ``Ledger.balance`` while holding the
auditor lock.  Statically that is a cycle in the lock-acquisition graph
(exactly one LCK004 finding); dynamically, ``drive`` exercises both
nesting orders so a :class:`repro.analysis.concurrency.LockRegistry`
records a lock-order inversion even though the sequential schedule never
deadlocks.
"""

from __future__ import annotations

import threading


class Ledger:
    def __init__(self, auditor: "Auditor | None" = None) -> None:
        self.entries: "list[float]" = []
        self.auditor = auditor
        self._lock = threading.Lock()

    def balance(self) -> float:
        with self._lock:
            return sum(self.entries)

    def transfer(self, amount: float) -> None:
        with self._lock:
            self.entries.append(amount)
            if self.auditor is not None:
                self.auditor.observe(amount)


class Auditor:
    def __init__(self) -> None:
        self.seen: "list[float]" = []
        self.ledger: "Ledger | None" = None
        self._lock = threading.Lock()

    def observe(self, amount: float) -> None:
        with self._lock:
            self.seen.append(amount)

    def reconcile(self) -> float:
        with self._lock:
            assert self.ledger is not None
            return self.ledger.balance() - sum(self.seen)


def drive(registry) -> "tuple[Ledger, Auditor]":
    """Run both nesting orders under a LockRegistry (sequentially — the
    inversion is recorded from order alone, no deadlock required)."""
    auditor = Auditor()
    ledger = Ledger(auditor)
    auditor.ledger = ledger
    registry.attach(ledger, "ledger")
    registry.attach(auditor, "auditor")
    t1 = threading.Thread(target=ledger.transfer, args=(1.0,), name="transfer")
    t1.start()
    t1.join()
    t2 = threading.Thread(target=auditor.reconcile, name="reconcile")
    t2.start()
    t2.join()
    return ledger, auditor
