"""GoodLock-style dynamic lock-order recording.

The static lock graph (:mod:`.lockgraph`) over-approximates: it reports
cycles that *could* deadlock.  This module under-approximates from a real
run: a process-wide :class:`LockRegistry` hands out :class:`RegisteredLock`
instances that timestamp per-thread acquisition nesting, and after the run
:meth:`LockRegistry.inversions` reports every pair of locks acquired in
both orders by the whole run — a potential ABBA deadlock *even when no
deadlock manifested*, because the two threads merely have to interleave
differently next time.  :meth:`LockRegistry.cycles` generalizes to rings of
three or more locks.

Locks enroll either directly (``registry.register("ps")``) or by swapping a
live object's lock in place (``registry.attach(server, "ps")``), the same
move :func:`repro.analysis.race.instrument_object` performs — pass it a
registry and race detection and order recording share one lock.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..race import CheckedLock

__all__ = ["LockOrderEdge", "LockOrderInversion", "LockRegistry", "RegisteredLock"]


@dataclass(frozen=True)
class LockOrderEdge:
    """Witness that one thread acquired ``inner`` while holding ``outer``."""

    outer: str
    inner: str
    thread: str
    seq: int  #: process-wide acquisition sequence number (happens-before order)

    def format(self) -> str:
        return f"[{self.thread} #{self.seq}] {self.outer} -> {self.inner}"


@dataclass(frozen=True)
class LockOrderInversion:
    """Two locks acquired in both nesting orders across the run."""

    first: LockOrderEdge  #: witness for ``a -> b``
    second: LockOrderEdge  #: witness for ``b -> a``

    def format(self) -> str:
        return (
            f"lock-order inversion between {self.first.outer!r} and "
            f"{self.first.inner!r}: {self.first.format()} vs {self.second.format()} "
            "— a different interleaving deadlocks"
        )


class RegisteredLock(CheckedLock):
    """A :class:`~repro.analysis.race.CheckedLock` that reports its nesting."""

    def __init__(self, name: str, registry: "LockRegistry") -> None:
        super().__init__()
        self.name = name
        self._registry = registry

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = super().acquire(blocking, timeout)
        if ok:
            self._registry._notify_acquire(self)
        return ok

    def release(self) -> None:
        self._registry._notify_release(self)
        super().release()

    def __enter__(self) -> "RegisteredLock":
        self.acquire()
        return self

    def __repr__(self) -> str:
        return f"RegisteredLock({self.name!r})"


class LockRegistry:
    """Process-wide acquisition-order recorder for every enrolled lock."""

    def __init__(self) -> None:
        self._mu = threading.Lock()
        self._held = threading.local()
        self._locks: "dict[str, RegisteredLock]" = {}
        #: first witness per ordered pair — one edge per (outer, inner)
        self._edges: "dict[tuple[str, str], LockOrderEdge]" = {}
        self._seq = 0

    # -- enrollment ------------------------------------------------------

    def register(self, name: str) -> RegisteredLock:
        """Create (or return) the registered lock called ``name``."""
        with self._mu:
            lock = self._locks.get(name)
            if lock is None:
                lock = RegisteredLock(name, self)
                self._locks[name] = lock
            return lock

    def attach(
        self, obj: object, name: "str | None" = None, lock_attr: str = "_lock"
    ) -> RegisteredLock:
        """Swap ``obj``'s lock for a registered one, in place.

        The object must already own a lock under ``lock_attr`` (the static
        convention); the replacement is a drop-in ``with``-able lock.
        """
        if not hasattr(obj, lock_attr):
            raise AttributeError(
                f"{type(obj).__name__} has no {lock_attr!r}; not a lock-owning object"
            )
        lock = self.register(name if name is not None else type(obj).__name__)
        setattr(obj, lock_attr, lock)
        return lock

    @property
    def names(self) -> "tuple[str, ...]":
        with self._mu:
            return tuple(sorted(self._locks))

    # -- recording hooks (called by RegisteredLock) ----------------------

    def _stack(self) -> "list[RegisteredLock]":
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def _notify_acquire(self, lock: RegisteredLock) -> None:
        stack = self._stack()
        thread = threading.current_thread().name
        with self._mu:
            self._seq += 1
            seq = self._seq
            for outer in stack:
                if outer.name == lock.name:
                    continue
                key = (outer.name, lock.name)
                if key not in self._edges:
                    self._edges[key] = LockOrderEdge(outer.name, lock.name, thread, seq)
        stack.append(lock)

    def _notify_release(self, lock: RegisteredLock) -> None:
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is lock:
                del stack[i]
                break

    # -- reporting -------------------------------------------------------

    def order_edges(self) -> "list[LockOrderEdge]":
        """Every observed nesting edge, in first-witness order."""
        with self._mu:
            return sorted(self._edges.values(), key=lambda e: e.seq)

    def inversions(self) -> "list[LockOrderInversion]":
        """Lock pairs acquired in both orders anywhere in the run."""
        with self._mu:
            edges = dict(self._edges)
        out: list[LockOrderInversion] = []
        for (a, b), first in sorted(edges.items()):
            if a < b and (b, a) in edges:
                out.append(LockOrderInversion(first, edges[(b, a)]))
        return out

    def cycles(self) -> "list[list[str]]":
        """Cycles of any length in the observed acquisition-order graph."""
        with self._mu:
            adj: dict[str, set[str]] = {}
            for a, b in self._edges:
                adj.setdefault(a, set()).add(b)
                adj.setdefault(b, set())
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        onstack: set[str] = set()
        stack: list[str] = []
        sccs: list[list[str]] = []
        counter = [0]
        for root in sorted(adj):
            if root in index:
                continue
            work = [(root, iter(sorted(adj[root])))]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            onstack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for w in it:
                    if w not in index:
                        index[w] = low[w] = counter[0]
                        counter[0] += 1
                        stack.append(w)
                        onstack.add(w)
                        work.append((w, iter(sorted(adj[w]))))
                        advanced = True
                        break
                    if w in onstack:
                        low[node] = min(low[node], index[w])
                if advanced:
                    continue
                work.pop()
                if work:
                    low[work[-1][0]] = min(low[work[-1][0]], low[node])
                if low[node] == index[node]:
                    scc = []
                    while True:
                        w = stack.pop()
                        onstack.discard(w)
                        scc.append(w)
                        if w == node:
                            break
                    if len(scc) > 1:
                        sccs.append(sorted(scc))
        return sorted(sccs)

    def report(self) -> str:
        """Human-readable summary for smoke tests and debugging."""
        lines = [e.format() for e in self.order_edges()]
        for inv in self.inversions():
            lines.append(inv.format())
        return "\n".join(lines) or "<no nested acquisitions observed>"
