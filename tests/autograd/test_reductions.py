"""Reduction ops: sum, mean, max, logsumexp."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck


def t(rng, *shape):
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestSum:
    def test_sum_all(self, rng):
        a = t(rng, 3, 4)
        assert gradcheck(lambda a: a.sum(), [a])

    def test_sum_axis(self, rng):
        a = t(rng, 3, 4)
        assert gradcheck(lambda a: (a.sum(axis=0) ** 2).sum(), [a])

    def test_sum_axis_keepdims(self, rng):
        a = t(rng, 3, 4)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (3, 1)
        assert gradcheck(lambda a: (a.sum(axis=1, keepdims=True) ** 2).sum(), [a])

    def test_sum_multi_axis(self, rng):
        a = t(rng, 2, 3, 4)
        out = a.sum(axis=(0, 2))
        assert out.shape == (3,)
        assert gradcheck(lambda a: (a.sum(axis=(0, 2)) ** 2).sum(), [a])

    def test_sum_negative_axis(self, rng):
        a = t(rng, 2, 3)
        assert a.sum(axis=-1).shape == (2,)


class TestMean:
    def test_mean_all(self, rng):
        a = t(rng, 4, 4)
        np.testing.assert_allclose(a.mean().data, a.data.mean())
        assert gradcheck(lambda a: a.mean(), [a])

    def test_mean_axis(self, rng):
        a = t(rng, 3, 5)
        assert gradcheck(lambda a: (a.mean(axis=0) ** 2).sum(), [a])

    def test_mean_tuple_axis(self, rng):
        a = t(rng, 2, 3, 4)
        np.testing.assert_allclose(a.mean(axis=(0, 2)).data, a.data.mean(axis=(0, 2)))


class TestMax:
    def test_max_all(self, rng):
        a = t(rng, 3, 4)
        np.testing.assert_allclose(a.max().data, a.data.max())

    def test_max_grad_routes_to_argmax(self):
        a = Tensor(np.array([1.0, 5.0, 3.0]), requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0, 1, 0])

    def test_max_ties_split_gradient(self):
        a = Tensor(np.array([2.0, 2.0]), requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.5, 0.5])

    def test_max_axis(self, rng):
        a = t(rng, 4, 6)
        np.testing.assert_allclose(a.max(axis=1).data, a.data.max(axis=1))
        assert gradcheck(lambda a: (a.max(axis=1) ** 2).sum(), [a], atol=1e-4)

    def test_max_axis_keepdims(self, rng):
        a = t(rng, 4, 6)
        assert a.max(axis=0, keepdims=True).shape == (1, 6)


class TestLogSumExp:
    def test_matches_numpy(self, rng):
        a = t(rng, 3, 7)
        expected = np.log(np.exp(a.data).sum(axis=1))
        np.testing.assert_allclose(a.logsumexp(axis=1).data, expected, atol=1e-10)

    def test_stable_for_large_inputs(self):
        a = Tensor(np.array([[1000.0, 1000.0]]), requires_grad=True)
        out = a.logsumexp(axis=1)
        assert np.isfinite(out.data).all()
        np.testing.assert_allclose(out.data, [1000.0 + np.log(2)])

    def test_grad(self, rng):
        a = t(rng, 2, 5)
        assert gradcheck(lambda a: a.logsumexp(axis=1).sum(), [a], atol=1e-4)
