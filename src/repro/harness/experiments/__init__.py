"""One runner module per paper table/figure (see DESIGN.md §4).

Each module exposes ``run(fast: bool = False, seeds: tuple[int, ...] = ...)``
returning an :class:`~repro.harness.report.ExperimentReport`.
"""

from . import (
    ablation_bandwidth,
    ablation_combination,
    ablation_momentum,
    ablation_ratio,
    ablation_samomentum,
    ablation_secondary,
    ablation_staleness,
    ablation_sync_async,
    fig2_cifar_curves,
    fig3_imagenet_curves,
    fig4_imagenet16_curves,
    fig5_low_bandwidth,
    fig6_speedup,
    memory_usage,
    table2_accuracy,
    table3_scaling,
    table4_imagenet_scaling,
    table5_techniques,
)

__all__ = [
    "table2_accuracy",
    "table3_scaling",
    "table4_imagenet_scaling",
    "table5_techniques",
    "fig2_cifar_curves",
    "fig3_imagenet_curves",
    "fig4_imagenet16_curves",
    "fig5_low_bandwidth",
    "fig6_speedup",
    "memory_usage",
    "ablation_bandwidth",
    "ablation_combination",
    "ablation_momentum",
    "ablation_ratio",
    "ablation_samomentum",
    "ablation_secondary",
    "ablation_staleness",
    "ablation_sync_async",
]
