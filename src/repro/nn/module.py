"""Module base class: parameter registration, train/eval mode, state dicts."""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from ..autograd import Tensor

__all__ = ["Module", "Parameter", "Sequential"]


class Parameter(Tensor):
    """A trainable tensor (always requires grad)."""

    def __init__(self, data, name: str | None = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all network components.

    Submodules and parameters assigned as attributes are auto-registered,
    mirroring the PyTorch convention the paper's implementation relied on.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state (e.g. BatchNorm running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def set_buffer(self, name: str, value: np.ndarray) -> None:
        if name not in self._buffers:
            raise KeyError(name)
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for mod_name, mod in self._modules.items():
            yield from mod.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name in self._buffers:
            yield (f"{prefix}{name}", self._buffers[name])
        for mod_name, mod in self._modules.items():
            yield from mod.named_buffers(prefix=f"{prefix}{mod_name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for mod in self._modules.values():
            yield from mod.modules()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for m in self.modules():
            object.__setattr__(m, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        state: OrderedDict[str, np.ndarray] = OrderedDict()
        for name, p in self.named_parameters():
            state[name] = p.data.copy()
        for name, b in self.named_buffers():
            state[f"buffer:{name}"] = np.array(b, copy=True)
        return state

    def load_state_dict(self, state: "OrderedDict[str, np.ndarray]") -> None:
        params = dict(self.named_parameters())
        for name, value in state.items():
            if name.startswith("buffer:"):
                self._load_buffer(name[len("buffer:") :], value)
            else:
                if name not in params:
                    raise KeyError(f"unknown parameter {name!r}")
                np.copyto(params[name].data, value)  # repro: noqa TEN001 — checkpoint restore

    def _load_buffer(self, dotted: str, value: np.ndarray) -> None:
        parts = dotted.split(".")
        mod: Module = self
        for part in parts[:-1]:
            mod = mod._modules[part]
        mod.set_buffer(parts[-1], np.array(value, copy=True))


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            self._modules[str(i)] = layer

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)
