"""Table 4 — ImageNet stand-in at 4 and 16 workers."""

from __future__ import annotations

from ..config import get_workload
from ..report import ExperimentReport
from .common import METHOD_LABELS, mean_accuracy, resolve_fast, scaling_hyper

__all__ = ["run"]

PAPER_ROWS = [
    (1, "MSGD", "69.40%", "-"),
    (4, "ASGD", "66.68%", "-2.72%"),
    (4, "GD-async", "66.26%", "-3.14%"),
    (4, "DGC-async", "68.37%", "-1.03%"),
    (4, "DGS", "69.00%", "-0.40%"),
    (16, "ASGD", "66.25%", "-3.15%"),
    (16, "GD-async", "66.19%", "-3.21%"),
    (16, "DGC-async", "67.62%", "-1.78%"),
    (16, "DGS", "68.25%", "-1.15%"),
]


def run(fast: bool | None = None, seeds: tuple[int, ...] = (0, 1)) -> ExperimentReport:
    fast = resolve_fast(fast)
    worker_counts = (4,) if fast else (4, 16)
    if fast:
        seeds = seeds[:1]
    wl = get_workload("imagenet")
    report = ExperimentReport(
        experiment_id="Table 4",
        title="ResNet-18 stand-in on synthetic ImageNet, 4 and 16 workers",
        headers=("Workers in total", "Training Method", "Top-1 Accuracy", "Δ vs MSGD"),
        paper_rows=PAPER_ROWS,
    )
    msgd_acc, _ = mean_accuracy("msgd", wl, 1, seeds, fast)
    report.add_row(1, "MSGD", f"{100 * msgd_acc:.2f}%", "-")
    for n in worker_counts:
        hyper = scaling_hyper(wl, n)  # momentum reduced at scale (§5.1/§5.4)
        # "Batchsize per iteration 256" is constant across worker counts in
        # the paper's Table 4: per-worker batch shrinks as workers grow.
        bs = max(8, (wl.batch_size * 4) // n)
        for method in ("asgd", "gd_async", "dgc_async", "dgs"):
            acc, _ = mean_accuracy(method, wl, n, seeds, fast, hyper=hyper, batch_size=bs)
            delta = 100 * (acc - msgd_acc)
            report.add_row(n, METHOD_LABELS[method], f"{100 * acc:.2f}%", f"{delta:+.2f}%")
    report.add_note(
        "Expected shape: DGS closest to MSGD at 4 workers; at 16 workers the "
        "sparsified methods and ASGD compress into a ~1-pt band at this micro "
        "scale (deviation from the paper's +2-pt DGS margin — see EXPERIMENTS.md)."
    )
    return report
