"""§5.7 decomposition — the effect of each DGS ingredient.

The paper's reading of its own results: GD-async = ASGD + dual-way
sparsification (so GD-async vs ASGD isolates dual-way sparsification), and
DGS = GD-async + SAMomentum (so DGS vs GD-async isolates SAMomentum);
DGC-async vs DGS compares SAMomentum against momentum correction.
"""

from __future__ import annotations

from ..config import get_workload
from ..report import ExperimentReport
from .common import METHOD_LABELS, mean_accuracy, resolve_fast

__all__ = ["run"]

COMPARISONS = (
    ("asgd", "gd_async", "dual-way sparsification"),
    ("gd_async", "dgs", "SAMomentum"),
    ("dgc_async", "dgs", "SAMomentum vs momentum correction"),
)


def run(fast: bool | None = None, seeds: tuple[int, ...] = (0, 1, 2)) -> ExperimentReport:
    fast = resolve_fast(fast)
    if fast:
        seeds = seeds[:1]
    wl = get_workload("cifar10")
    num_workers = 4

    report = ExperimentReport(
        experiment_id="Sec 5.7 (technique decomposition)",
        title=f"Effect of each DGS ingredient ({num_workers} workers)",
        headers=("Method", "Top-1 Accuracy", "Isolates"),
    )
    accs: dict[str, float] = {}
    for method in ("asgd", "gd_async", "dgc_async", "dgs"):
        acc, std = mean_accuracy(method, wl, num_workers, seeds, fast)
        accs[method] = acc
        report.add_row(METHOD_LABELS[method], f"{100 * acc:.2f}% ± {100 * std:.2f}", "")
    for base, treat, what in COMPARISONS:
        delta = 100 * (accs[treat] - accs[base])
        report.add_row(
            f"{METHOD_LABELS[treat]} − {METHOD_LABELS[base]}", f"{delta:+.2f} pts", what
        )
    report.add_note(
        "Expected shape: SAMomentum is the dominant accuracy contribution; dual-way "
        "sparsification alone roughly preserves ASGD-level convergence."
    )
    return report
