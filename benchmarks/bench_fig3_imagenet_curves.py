"""Figure 3 — learning curves on synthetic ImageNet, 4 workers."""

from repro.harness.experiments import fig3_imagenet_curves
from repro.harness.config import is_fast_mode


def test_fig3_imagenet_curves(run_experiment):
    report = run_experiment(fig3_imagenet_curves, "fig3_imagenet_curves")
    if is_fast_mode():
        return  # smoke pass: shape assertions hold at full scale only
    assert len(report.figures) == 2
    finals = {row[0]: float(row[1].rstrip("%")) for row in report.rows}
    assert finals["DGS"] >= finals["ASGD"] - 1.0  # paper: DGS +2.3 pts over ASGD
