"""Density-regime behaviour of the full DGS communication path.

These tests pin the systems-level claim behind BitmapTensor/encode_best:
the downstream model difference densifies with staleness, and the wire
cost tracks the cheapest encoding at every density — never the naive COO.
"""

from collections import OrderedDict

import numpy as np
import pytest

from repro.compression import (
    BitmapTensor,
    DenseTensor,
    SparseTensor,
    bitmap_nbytes,
    dense_nbytes,
    encode_best,
    encode_sparse,
    sparse_nbytes,
)
from repro.core.tracker import ModelDifferenceTracker


class TestDensificationPath:
    def _tracker_after(self, rng, updates, density_per_update, n=2000):
        tr = ModelDifferenceTracker(OrderedDict([("w", (n,))]), 2)
        k = int(n * density_per_update)
        for _ in range(updates):
            arr = np.zeros(n)
            arr[rng.choice(n, size=k, replace=False)] = rng.normal(size=k)
            tr.apply_update(OrderedDict([("w", encode_sparse(arr))]))
        return tr

    def test_fresh_worker_gets_coo(self, rng):
        tr = self._tracker_after(rng, updates=1, density_per_update=0.01)
        G = tr.model_difference(0)
        assert isinstance(G["w"], SparseTensor)

    def test_stale_worker_gets_bitmap(self, rng):
        tr = self._tracker_after(rng, updates=30, density_per_update=0.01)
        G = tr.model_difference(0)
        assert isinstance(G["w"], BitmapTensor)

    def test_extremely_stale_worker_gets_dense(self, rng):
        tr = self._tracker_after(rng, updates=400, density_per_update=0.01)
        G = tr.model_difference(0)
        assert isinstance(G["w"], DenseTensor)

    @pytest.mark.parametrize("updates", [1, 10, 50, 200])
    def test_wire_cost_never_exceeds_alternatives(self, rng, updates):
        tr = self._tracker_after(rng, updates=updates, density_per_update=0.01)
        G = tr.model_difference(0)["w"]
        n = 2000
        nnz = G.nnz
        assert G.nbytes() == min(
            sparse_nbytes(nnz), bitmap_nbytes(n, nnz), dense_nbytes(n)
        )

    def test_worker_reconstruction_exact_across_formats(self, rng):
        """Whatever format ships, the worker ends at θ0 + M exactly."""
        for updates in (1, 30, 400):
            tr = self._tracker_after(rng, updates=updates, density_per_update=0.01)
            theta = np.zeros(2000)
            tr.model_difference(0)["w"].add_into(theta)
            np.testing.assert_allclose(theta, tr.M["w"], atol=1e-12)
