"""Optimisers, LR schedules, and gradient clipping."""

from .clip import clip_by_global_norm, global_norm
from .schedules import ConstantLR, CosineDecay, Schedule, StepDecay, WarmupWrapper
from .lars import LARS
from .sgd import SGD

__all__ = [
    "SGD",
    "LARS",
    "Schedule",
    "ConstantLR",
    "StepDecay",
    "CosineDecay",
    "WarmupWrapper",
    "global_norm",
    "clip_by_global_norm",
]
