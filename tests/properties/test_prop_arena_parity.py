"""Arena path ≡ dict reference path, bitwise, at equal dtype.

The arena's whole claim (``repro.core.arena``) is that fusing per-layer
loops into flat-buffer ops changes *nothing* about the arithmetic:
elementwise IEEE operations do not depend on how the operands are
batched.  These tests pin that — every payload type through
``add_payload``, and every worker strategy / the server tracker end to
end — with ``assert_array_equal`` (no tolerance) at float64.
"""

from collections import OrderedDict

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    TopKSparsifier,
    encode_best,
    encode_sparse,
)
from repro.core.arena import LayerArena
from repro.core.strategies import (
    DenseStrategy,
    DGCStrategy,
    GradientDroppingStrategy,
    SAMomentumStrategy,
)
from repro.core.tracker import ModelDifferenceTracker

N = 14
SHAPES = OrderedDict([("w", (N,)), ("b", (5,))])

finite = st.floats(min_value=-100, max_value=100, allow_nan=False, width=64)
vec = st.lists(finite, min_size=N, max_size=N)
small_vec = st.lists(finite, min_size=5, max_size=5)
grad_seqs = st.lists(st.tuples(vec, small_vec), min_size=1, max_size=8)
ratios = st.floats(min_value=0.05, max_value=1.0)
lrs = st.floats(min_value=0.001, max_value=1.0)
momenta = st.floats(min_value=0.05, max_value=0.95)


def _grads(pair):
    w, b = pair
    return OrderedDict([("w", np.asarray(w)), ("b", np.asarray(b))])


def _assert_payload_equal(a, b):
    """Two per-layer payloads produce identical dense content, bitwise."""
    assert list(a) == list(b)
    for n in a:
        da = a[n].to_dense() if hasattr(a[n], "to_dense") else np.asarray(a[n])
        db = b[n].to_dense() if hasattr(b[n], "to_dense") else np.asarray(b[n])
        np.testing.assert_array_equal(da, db)


class TestAddPayloadParity:
    """arena.add_payload == layerops-style reference loop, every payload."""

    @given(pair=st.tuples(vec, small_vec), scale=st.sampled_from([1.0, -1.0, 0.5]))
    @settings(max_examples=60, deadline=None)
    def test_dense_payload(self, pair, scale):
        vals = _grads(pair)
        arena = LayerArena.from_layers(_grads(pair), dtype=np.float64)
        ref = _grads(pair)
        arena.add_payload(vals, scale=scale)
        for n, arr in ref.items():
            if scale == 1.0:
                arr += vals[n]
            else:
                arr += scale * vals[n]
            np.testing.assert_array_equal(arena[n], arr)

    @given(pair=st.tuples(vec, small_vec), scale=st.sampled_from([1.0, -1.0]))
    @settings(max_examples=60, deadline=None)
    def test_sparse_payload(self, pair, scale):
        vals = _grads(pair)
        payload = OrderedDict((n, encode_sparse(v)) for n, v in vals.items())
        arena = LayerArena(SHAPES, dtype=np.float64)
        ref = OrderedDict((n, np.zeros(s)) for n, s in SHAPES.items())
        arena.add_payload(payload, scale=scale)
        for n, layer in payload.items():
            if scale == 1.0:
                layer.add_into(ref[n])
            else:  # the reference server: dest.reshape(-1)[idx] -= values
                ref[n].reshape(-1)[layer.indices] -= layer.values
            np.testing.assert_array_equal(arena[n], ref[n])

    @given(pair=st.tuples(vec, small_vec), scale=st.floats(min_value=0.1, max_value=2.0))
    @settings(max_examples=60, deadline=None)
    def test_quantized_payload(self, pair, scale):
        from repro.compression import QuantizedSparseTensor

        vals = _grads(pair)
        payload = OrderedDict(
            (
                n,
                QuantizedSparseTensor(
                    np.flatnonzero(v), np.sign(v[v != 0]).astype(np.int8), scale, v.shape
                ),
            )
            for n, v in vals.items()
        )
        arena = LayerArena(SHAPES, dtype=np.float64)
        ref = OrderedDict((n, np.zeros(s)) for n, s in SHAPES.items())
        arena.add_payload(payload)
        for n, layer in payload.items():
            layer.add_into(ref[n])
            np.testing.assert_array_equal(arena[n], ref[n])

    @given(pair=st.tuples(vec, small_vec), factor=st.floats(min_value=-3.0, max_value=3.0))
    @settings(max_examples=60, deadline=None)
    def test_scale_fused(self, pair, factor):
        """arena.scale_ == per-layer `arr *= factor`, bitwise."""
        arena = LayerArena.from_layers(_grads(pair), dtype=np.float64)
        ref = _grads(pair)
        arena.scale_(factor)
        for n, arr in ref.items():
            arr *= factor
            np.testing.assert_array_equal(arena[n], arr)

    @given(pair=st.tuples(vec, small_vec))
    @settings(max_examples=60, deadline=None)
    def test_best_encoded_payload(self, pair):
        """encode_best picks COO/bitmap/dense per density — all must agree."""
        vals = _grads(pair)
        payload = OrderedDict((n, encode_best(v)) for n, v in vals.items())
        arena = LayerArena(SHAPES, dtype=np.float64)
        ref = OrderedDict((n, np.zeros(s)) for n, s in SHAPES.items())
        arena.add_payload(payload)
        for n, layer in payload.items():
            layer.add_into(ref[n])
            np.testing.assert_array_equal(arena[n], ref[n])


class TestStrategyParity:
    """arena=True (float64) strategies == reference strategies, bitwise."""

    @given(seq=grad_seqs, lr=lrs)
    @settings(max_examples=40, deadline=None)
    def test_dense(self, seq, lr):
        ref = DenseStrategy(SHAPES)
        opt = DenseStrategy(SHAPES, arena=True, dtype=np.float64)
        for pair in seq:
            _assert_payload_equal(opt.prepare(_grads(pair), lr), ref.prepare(_grads(pair), lr))

    @given(seq=grad_seqs, ratio=ratios, lr=lrs)
    @settings(max_examples=40, deadline=None)
    def test_gradient_dropping(self, seq, ratio, lr):
        ref = GradientDroppingStrategy(SHAPES, TopKSparsifier(ratio, min_sparse_size=0))
        opt = GradientDroppingStrategy(
            SHAPES, TopKSparsifier(ratio, min_sparse_size=0), arena=True, dtype=np.float64
        )
        for pair in seq:
            _assert_payload_equal(opt.prepare(_grads(pair), lr), ref.prepare(_grads(pair), lr))
        for n in SHAPES:
            np.testing.assert_array_equal(opt.residual[n], ref.residual[n])

    @given(seq=grad_seqs, ratio=ratios, lr=lrs, m=momenta)
    @settings(max_examples=40, deadline=None)
    def test_dgc(self, seq, ratio, lr, m):
        ref = DGCStrategy(SHAPES, ratio, momentum=m, min_sparse_size=0)
        opt = DGCStrategy(
            SHAPES, ratio, momentum=m, min_sparse_size=0, arena=True, dtype=np.float64
        )
        for pair in seq:
            _assert_payload_equal(opt.prepare(_grads(pair), lr), ref.prepare(_grads(pair), lr))
        for n in SHAPES:
            np.testing.assert_array_equal(opt.u[n], ref.u[n])
            np.testing.assert_array_equal(opt.v[n], ref.v[n])

    @given(seq=grad_seqs, ratio=ratios, lr=lrs, m=momenta)
    @settings(max_examples=40, deadline=None)
    def test_samomentum(self, seq, ratio, lr, m):
        ref = SAMomentumStrategy(SHAPES, TopKSparsifier(ratio, min_sparse_size=0), m)
        opt = SAMomentumStrategy(
            SHAPES, TopKSparsifier(ratio, min_sparse_size=0), m, arena=True, dtype=np.float64
        )
        for pair in seq:
            _assert_payload_equal(opt.prepare(_grads(pair), lr), ref.prepare(_grads(pair), lr))
        for n in SHAPES:
            np.testing.assert_array_equal(opt.u[n], ref.u[n])


class TestTrackerParity:
    """Server-side M / v_k / model differences, arena vs dict, bitwise."""

    @given(
        seq=st.lists(st.tuples(vec, small_vec), min_size=1, max_size=10),
        syncs=st.lists(st.sampled_from([None, 0, 1]), min_size=10, max_size=10),
        ratio=ratios,
        secondary=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_full_exchange_schedule(self, seq, syncs, ratio, secondary):
        def make(arena):
            return ModelDifferenceTracker(
                SHAPES, 2,
                secondary=TopKSparsifier(ratio, min_sparse_size=0) if secondary else None,
                arena=arena, dtype=np.float64 if arena else None,
            )

        ref, opt = make(False), make(True)
        for pair, sync in zip(seq, syncs):
            upd = OrderedDict((n, encode_sparse(v)) for n, v in _grads(pair).items())
            ref.apply_update(upd)
            opt.apply_update(upd)
            if sync is not None:
                _assert_payload_equal(opt.model_difference(sync), ref.model_difference(sync))
        for n in SHAPES:
            np.testing.assert_array_equal(opt.M[n], ref.M[n])
            for w in (0, 1):
                np.testing.assert_array_equal(opt.v[w][n], ref.v[w][n])
        assert opt.t == ref.t and opt.prev == ref.prev
