"""Model Difference Tracking — the server side of DGS (§4.2, Algorithm 2).

The server never materialises per-worker models.  It keeps:

* ``M`` — the accumulation of all applied updates, ``M_t = θ_t − θ_0``
  (Eq. 2).  Updates arrive as per-layer values ``g`` already scaled by η,
  and are applied as ``M ← M − g`` (Eq. 1).
* ``v_k`` — per worker, the accumulation of everything already shipped to
  worker ``k`` (Eq. 3/6b).

On each exchange with worker ``k`` the server answers with the *model
difference* ``G = M − v_k`` (Eq. 3), optionally secondary-compressed
(Eq. 6a), then advances ``v_k ← v_k + G``.  Without secondary compression
``v_k == M`` after every exchange, which makes DGS exactly equivalent to
download-the-whole-model ASGD (Eq. 5) — the headline invariant of §4.2.1.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Mapping

import numpy as np

from ..compression.base import Sparsifier
from ..compression.coding import SparseTensor, encode_best, encode_mask
from ..compression.workspace import KernelWorkspace
from .arena import LayerArena, make_layer_buffers

__all__ = ["ModelDifferenceTracker"]


class ModelDifferenceTracker:
    """Server state for dual-way sparsification (M, per-worker v_k).

    ``arena=True`` stores M and every v_k as
    :class:`~repro.core.arena.LayerArena` buffers (float32 unless ``dtype``
    overrides): applying an update or advancing v_k becomes one fused op
    over the flat buffer — shortening the server's lock hold — and the
    model-difference encode draws scratch from a tracker-owned
    :class:`KernelWorkspace`.  ``arena=False`` is the dict-of-float64
    reference path, bitwise-identical at equal dtype.
    """

    def __init__(
        self,
        shapes: Mapping[str, tuple[int, ...]],
        num_workers: int,
        secondary: Sparsifier | None = None,
        track_differences: bool = True,
        arena: bool = False,
        dtype: "np.dtype | type | str | None" = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.shapes = OrderedDict(shapes)
        self.num_workers = num_workers
        self.secondary = secondary
        self.track_differences = track_differences
        self.arena = bool(arena)
        self.workspace: "KernelWorkspace | None" = KernelWorkspace() if self.arena else None
        self.M = make_layer_buffers(self.shapes, self.arena, dtype)
        # v_k buffers exist only under difference tracking — vanilla ASGD
        # downloads the whole model and pays no per-worker server memory.
        self.v = [
            make_layer_buffers(self.shapes, self.arena, dtype)
            for _ in range(num_workers if track_differences else 0)
        ]
        # Reused scratch arena for M − v_k (arena mode only; overwritten on
        # every model_difference call, never escapes the tracker).
        self._diff: "LayerArena | None" = (
            LayerArena(self.shapes, dtype=self.M.dtype) if self.arena else None
        )
        #: server timestamp t — incremented once per applied update (Table 1)
        self.t = 0
        #: prev(k): server timestamp of worker k's last download (Table 1)
        self.prev = [0] * num_workers

    # ------------------------------------------------------------------
    def apply_update(self, update: "Mapping[str, SparseTensor] | Mapping[str, np.ndarray]") -> int:
        """``M ← M − g`` (Eq. 1).  Returns the new server timestamp."""
        if self.arena:
            # One fused op for same-layout dense arenas; COO scatter /
            # to_dense fallbacks otherwise — same arithmetic either way.
            self.M.add_payload(update, scale=-1.0)
            self.t += 1
            return self.t
        for name, g in update.items():
            dest = self.M[name]
            if isinstance(g, SparseTensor):
                dest.reshape(-1)[g.indices] -= g.values
            elif hasattr(g, "to_dense"):  # quantised payloads (extensions)
                dest -= g.to_dense()
            else:
                dest -= g
        self.t += 1
        return self.t

    def model_difference(self, worker: int) -> "OrderedDict[str, SparseTensor]":
        """Compute, record, and return ``G_k`` for ``worker`` (Eq. 3/6).

        Side effects: ``v_k ← v_k + G`` and ``prev(k) ← t``.
        """
        if not self.track_differences:
            raise RuntimeError("model_difference() requires track_differences=True")
        vk = self.v[worker]
        out: OrderedDict[str, SparseTensor] = OrderedDict()
        if self.arena:
            # One fused subtraction for the whole difference, then per-layer
            # encode out of the scratch arena's views.
            diff = self._diff
            np.subtract(self.M.flat, vk.flat, out=diff.flat)
            for name in self.M:
                d = diff[name]
                if self.secondary is not None:
                    sent = self.secondary.select(d, self.workspace)
                    if sent is None:
                        sent = encode_mask(d, self.secondary.mask(d), self.workspace)
                    sent.add_into(vk[name])
                else:
                    sent = encode_best(d, self.workspace)
                out[name] = sent
            if self.secondary is None:
                vk.copy_(self.M)  # v_k == M (Eq. 3), one memcpy
            self.prev[worker] = self.t
            return out
        for name, m_layer in self.M.items():
            diff = m_layer - vk[name]
            if self.secondary is not None:
                mask = self.secondary.mask(diff)
                sent = encode_mask(diff, mask)
                # v_k advances only by what was actually sent (Eq. 6b) —
                # the remainder is implicitly accumulated for later.
                sent.add_into(vk[name])
            else:
                # G densifies with staleness; pick the cheapest wire format
                # per layer (COO / bitmap / dense — see encode_best).
                sent = encode_best(diff)
                np.copyto(vk[name], m_layer)  # v_k == M (Eq. 3)
            out[name] = sent
        self.prev[worker] = self.t
        return out

    def staleness(self, worker: int) -> int:
        """Updates applied at the server since this worker last synced."""
        return self.t - self.prev[worker]

    # ------------------------------------------------------------------
    def global_model(self, theta0: Mapping[str, np.ndarray]) -> "Mapping[str, np.ndarray]":
        """Materialise θ_t = θ_0 + M_t (Eq. 2) — used for evaluation."""
        if (
            self.arena
            and isinstance(theta0, LayerArena)
            and theta0.same_layout(self.M)
        ):
            return theta0.clone().add_(self.M)  # one fused θ0 + M
        return OrderedDict((name, theta0[name] + self.M[name]) for name in self.M)

    def state_dict(self) -> "dict[str, np.ndarray]":
        """Snapshot M, every v_k, t, and prev(k) for checkpointing."""
        state: dict[str, np.ndarray] = {"t": np.array(self.t), "prev": np.array(self.prev)}
        for name, arr in self.M.items():
            state[f"M/{name}"] = arr.copy()
        for k, vk in enumerate(self.v):
            for name, arr in vk.items():
                state[f"v{k}/{name}"] = arr.copy()
        return state

    def load_state_dict(self, state: "Mapping[str, np.ndarray]") -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        self.t = int(state["t"])
        prev = [int(x) for x in np.asarray(state["prev"]).reshape(-1)]
        if len(prev) != self.num_workers:
            raise ValueError(
                f"checkpoint has {len(prev)} workers, tracker expects {self.num_workers}"
            )
        self.prev = prev
        for name, arr in self.M.items():
            np.copyto(arr, state[f"M/{name}"])
        for k, vk in enumerate(self.v):
            for name, arr in vk.items():
                np.copyto(arr, state[f"v{k}/{name}"])

    def server_state_bytes(self) -> int:
        """Memory held by M plus every v_k (the §5.6.2 accounting:
        ``NumOfWorkers × ParameterMemOfModel`` for the v's, + one M)."""
        m_bytes = sum(arr.nbytes for arr in self.M.values())
        v_bytes = sum(sum(arr.nbytes for arr in vk.values()) for vk in self.v)
        return m_bytes + v_bytes
