"""Gradient clipping."""

import numpy as np
import pytest

from repro.optim import clip_by_global_norm, global_norm


class TestGlobalNorm:
    def test_single_array(self):
        assert global_norm([np.array([3.0, 4.0])]) == pytest.approx(5.0)

    def test_multi_array(self):
        g = [np.array([3.0]), np.array([4.0])]
        assert global_norm(g) == pytest.approx(5.0)

    def test_empty(self):
        assert global_norm([]) == 0.0


class TestClip:
    def test_noop_below_threshold(self):
        g = [np.array([1.0, 1.0])]
        norm = clip_by_global_norm(g, 10.0)
        np.testing.assert_allclose(g[0], [1.0, 1.0])
        assert norm == pytest.approx(np.sqrt(2))

    def test_scales_above_threshold(self):
        g = [np.array([3.0, 4.0])]
        clip_by_global_norm(g, 1.0)
        assert global_norm(g) == pytest.approx(1.0, rel=1e-6)
        np.testing.assert_allclose(g[0] / np.linalg.norm(g[0]), [0.6, 0.8])

    def test_in_place(self):
        arr = np.array([10.0])
        clip_by_global_norm([arr], 1.0)
        assert arr[0] == pytest.approx(1.0, rel=1e-6)

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_by_global_norm([np.ones(2)], 0.0)
