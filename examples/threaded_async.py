#!/usr/bin/env python
"""Genuine asynchrony: DGS on real OS threads (no simulation).

Workers run in separate threads against a lock-protected parameter server;
interleavings — and therefore gradient staleness — come from your machine's
actual scheduler, like the paper's multi-GPU testbed.  Runs through the
unified execution layer — pass ``--backend process`` for real OS processes
exchanging actual bytes over pipes.

Usage:  python examples/threaded_async.py [--workers 4] [--iters 100]
"""

import argparse

from repro.core import Hyper
from repro.data import synthetic_cifar10
from repro.exec import RunConfig, train
from repro.nn import SimpleCNN


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--iters", type=int, default=100, help="iterations per worker")
    parser.add_argument("--backend", default="threaded", choices=("threaded", "process"))
    args = parser.parse_args()

    dataset = synthetic_cifar10(n_samples=2000, size=8, difficulty=4.0, seed=7)
    factory = lambda: SimpleCNN(3, 10, width=16, seed=0)

    for method in ("asgd", "dgs"):
        result = train(
            RunConfig(
                method,
                factory,
                dataset,
                num_workers=args.workers,
                batch_size=32,
                total_iterations=args.workers * args.iters,
                hyper=Hyper(lr=0.1, momentum=0.7, ratio=0.05, secondary_ratio=0.05),
                seed=0,
            ),
            backend=args.backend,
        )
        print(
            f"{method:5s}  acc {100 * result.final_accuracy:5.2f}%  "
            f"real time {result.makespan_s:5.1f}s  "
            f"mean staleness {result.mean_staleness:.2f}  "
            f"wire bytes {result.upload_bytes + result.download_bytes:,}"
        )


if __name__ == "__main__":
    main()
