"""SmallVGG — a plain (non-residual) deep CNN for the model zoo.

A VGG-style stack (conv-conv-pool blocks, no shortcuts) complements
MicroResNet: compression behaviour differs on plain networks because the
gradient magnitude distribution is less heavy-tailed without residual
scaling, which is exactly the kind of architecture ablation a downstream
user of a sparsification library runs first.
"""

from __future__ import annotations

import numpy as np

from ...autograd import Tensor
from ..conv import Conv2d, GlobalAvgPool2d, MaxPool2d
from ..layers import Linear, ReLU
from ..module import Module, Sequential
from ..norm import BatchNorm2d

__all__ = ["SmallVGG"]


class SmallVGG(Module):
    """conv×2+pool blocks at doubling width, then a linear head.

    ``widths=(8, 16)`` with 8×8 inputs gives a 4-layer convolutional
    backbone; each block halves the spatial size.
    """

    def __init__(
        self,
        in_channels: int = 3,
        num_classes: int = 10,
        widths: tuple[int, ...] = (8, 16),
        seed: int | None = None,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        layers: list[Module] = []
        prev = in_channels
        for width in widths:
            layers += [
                Conv2d(prev, width, 3, padding=1, bias=False, rng=rng),
                BatchNorm2d(width),
                ReLU(),
                Conv2d(width, width, 3, padding=1, bias=False, rng=rng),
                BatchNorm2d(width),
                ReLU(),
                MaxPool2d(2),
            ]
            prev = width
        self.features = Sequential(*layers)
        self.gap = GlobalAvgPool2d()
        self.fc = Linear(prev, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc(self.gap(self.features(x)))
