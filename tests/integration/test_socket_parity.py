"""Socket-backend parity: the transport must not change the math.

Dense ASGD in float64 is the substrate-independence probe the repo uses
everywhere (no sparsification ties, no dtype rounding): any loss-curve
divergence between transports is a transport bug, not noise.

* 1 worker, free-running: no scheduling freedom, so SocketTrainer and
  ThreadedTrainer (with ``wire_fidelity=True, register=True`` — the same
  codec round-trips and the same join handshake) must agree bitwise.
* 2 workers: free-running interleavings are nondeterministic, so the
  2-worker pin drives both workers' channels *lockstep round-robin* from
  the test over each transport — same frame order ⇒ the server state,
  and every loss, must agree bitwise between TCP and in-proc dispatch.
* checkpoint → restore → continue on the socket backend reproduces the
  uninterrupted run's tail bitwise.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.comm import (
    CONTROL_JOIN,
    CONTROL_LEAVE,
    CloseFrame,
    ControlFrame,
    GradientFrame,
)
from repro.comm.channel import InProcChannel, ServerService
from repro.comm.service import serve_channels
from repro.comm.socket import SocketChannel, SocketListener
from repro.core.layerops import parameters_of
from repro.core.methods import Hyper, get_method
from repro.data.loader import DataLoader
from repro.exec.common import build_server, build_worker
from repro.ps.socket import SocketTrainer
from repro.ps.threaded import ThreadedTrainer

DENSE = Hyper(lr=0.1, momentum=0.0)


def _socket_run(tiny_dataset, tiny_model_factory, iterations, **kwargs):
    return SocketTrainer(
        "asgd",
        tiny_model_factory,
        tiny_dataset,
        num_workers=1,
        batch_size=16,
        iterations_per_worker=iterations,
        hyper=DENSE,
        seed=0,
        **kwargs,
    ).run()


def test_one_worker_socket_bitwise_equal_to_threaded(tiny_dataset, tiny_model_factory):
    s = _socket_run(tiny_dataset, tiny_model_factory, 25)
    t = ThreadedTrainer(
        "asgd",
        tiny_model_factory,
        tiny_dataset,
        num_workers=1,
        batch_size=16,
        iterations_per_worker=25,
        hyper=DENSE,
        seed=0,
        wire_fidelity=True,  # same codec float32 round-trip as the socket
        register=True,  # same join handshake installing wire-rounded θ0
    ).run()
    assert list(s.loss_vs_step.ys) == list(t.loss_vs_step.ys)
    assert s.final_loss == t.final_loss
    assert s.final_accuracy == t.final_accuracy
    assert s.total_iterations == t.total_iterations == 25


class _Lockstep:
    """Drive N workers' channels round-robin from one thread.

    Removes the scheduling freedom that makes free-running multi-worker
    runs nondeterministic: every transport sees the identical frame
    sequence, so identical server math is a *bitwise* requirement.
    """

    def __init__(self, tiny_dataset, tiny_model_factory, num_workers):
        self.num_workers = num_workers
        self.loader = DataLoader(tiny_dataset, 16, seed=0)
        self.nodes = [
            build_worker(
                w,
                num_workers,
                tiny_model_factory(),
                self.loader,
                get_method("asgd"),
                DENSE,
                None,
                theta0=None,  # the join handshake installs θ0
            )
            for w in range(num_workers)
        ]

    def drive(self, channels, iterations):
        losses = []
        for ch, node in zip(channels, self.nodes):
            ch.send(ControlFrame(node.worker_id, CONTROL_JOIN))
            node.apply_reply(ch.recv().message)
        for _ in range(iterations):
            for ch, node in zip(channels, self.nodes):
                msg = node.compute_step()
                ch.send(GradientFrame(msg, node.last_loss))
                node.apply_reply(ch.recv().message)
                losses.append(node.last_loss)
        for ch, node in zip(channels, self.nodes):
            ch.send(ControlFrame(node.worker_id, CONTROL_LEAVE))
            ch.send(
                CloseFrame(
                    worker_id=node.worker_id,
                    samples_processed=node.samples_processed,
                    worker_state_bytes=node.worker_state_bytes(),
                )
            )
            ch.close()
        return losses


def _fresh_server(tiny_model_factory, num_workers):
    return build_server(
        get_method("asgd"), parameters_of(tiny_model_factory()), num_workers, DENSE
    )


def test_two_worker_lockstep_socket_bitwise_equal_to_inproc(
    tiny_dataset, tiny_model_factory
):
    """2-worker dense-ASGD float64, identical frame order over TCP and
    in-proc dispatch: losses and final server model agree bitwise."""
    iterations = 12

    # --- TCP loopback, served by the real serve loop in a thread
    tcp_server = _fresh_server(tiny_model_factory, 2)
    listener = SocketListener()
    host, port = listener.address
    report = {}

    def serve():
        report["r"] = serve_channels(
            [],
            ServerService(tcp_server),
            stats=tcp_server.stats,
            listener=listener,
            expected_closes=2,
        )

    server_thread = threading.Thread(target=serve)
    server_thread.start()
    tcp_channels = [SocketChannel.connect(host, port) for _ in range(2)]
    try:
        tcp_losses = _Lockstep(tiny_dataset, tiny_model_factory, 2).drive(
            tcp_channels, iterations
        )
    finally:
        server_thread.join(timeout=30)
        listener.close()
    assert report["r"].errors == []
    assert report["r"].joins == 2 and report["r"].leaves == 2

    # --- in-proc dispatch with the wire codec round-trip
    inproc_server = _fresh_server(tiny_model_factory, 2)
    service = ServerService(inproc_server)
    inproc_channels = [
        InProcChannel(service, w, stats=inproc_server.stats, wire_fidelity=True)
        for w in range(2)
    ]
    inproc_losses = _Lockstep(tiny_dataset, tiny_model_factory, 2).drive(
        inproc_channels, iterations
    )

    assert tcp_losses == inproc_losses  # bitwise: float equality, no tolerance
    assert tcp_server.timestamp == inproc_server.timestamp == 2 * iterations
    tcp_model, inproc_model = tcp_server.global_model(), inproc_server.global_model()
    for name in tcp_model:
        np.testing.assert_array_equal(tcp_model[name], inproc_model[name])


def test_socket_checkpoint_restore_continue_bitwise(
    tmp_path, tiny_dataset, tiny_model_factory
):
    full = _socket_run(tiny_dataset, tiny_model_factory, 20)

    path = tmp_path / "mid.ckpt"
    first = _socket_run(
        tiny_dataset, tiny_model_factory, 10, checkpoint_every=10, checkpoint_path=path
    )
    resumed = _socket_run(tiny_dataset, tiny_model_factory, 10, restore_from=path)

    assert list(first.loss_vs_step.ys) == list(full.loss_vs_step.ys)[:10]
    assert list(resumed.loss_vs_step.ys) == list(full.loss_vs_step.ys)[10:]
    assert resumed.final_loss == full.final_loss
    assert resumed.final_accuracy == full.final_accuracy
