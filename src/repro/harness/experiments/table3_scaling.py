"""Table 3 — CIFAR-10 scaling sweep: 1→32 workers, batch scaled down."""

from __future__ import annotations

from ..config import get_workload
from ..report import ExperimentReport
from .common import METHOD_LABELS, mean_accuracy, resolve_fast, scaled_batch, scaling_hyper

__all__ = ["run"]

PAPER_ROWS = [
    (1, 256, "MSGD", "93.08%", "-"),
    (1, 256, "ASGD", "91.54%", "-1.54%"),
    (1, 256, "GD-async", "92.15%", "-0.93%"),
    (1, 256, "DGC-async", "92.75%", "-0.33%"),
    (1, 256, "DGS", "92.97%", "-0.11%"),
    (4, 128, "ASGD", "90.7%", "-2.38%"),
    (4, 128, "GD-async", "92.01%", "-1.07%"),
    (4, 128, "DGC-async", "92.64%", "-0.44%"),
    (4, 128, "DGS", "92.91%", "-0.17%"),
    (8, 64, "ASGD", "90.46%", "-2.62%"),
    (8, 64, "GD-async", "91.81%", "-1.27%"),
    (8, 64, "DGC-async", "92.37%", "-0.71%"),
    (8, 64, "DGS", "93.32%", "+0.24%"),
    (16, 32, "ASGD", "90.53%", "-3.01%"),
    (16, 32, "GD-async", "91.43%", "-1.65%"),
    (16, 32, "DGC-async", "92.28%", "-0.80%"),
    (16, 32, "DGS", "92.98%", "-0.10%"),
    (32, 16, "ASGD", "88.36%", "-4.71%"),
    (32, 16, "GD-async", "91%", "-2.08%"),
    (32, 16, "DGC-async", "91.86%", "-1.22%"),
    (32, 16, "DGS", "92.69%", "-0.39%"),
]

WORKER_COUNTS = (1, 4, 8, 16, 32)


def run(fast: bool | None = None, seeds: tuple[int, ...] = (0, 1, 2)) -> ExperimentReport:
    fast = resolve_fast(fast)
    worker_counts = (1, 4, 8) if fast else WORKER_COUNTS
    if fast:
        seeds = seeds[:1]
    wl = get_workload("cifar10")
    report = ExperimentReport(
        experiment_id="Table 3",
        title="ResNet-18 stand-in on synthetic Cifar10, scaling sweep",
        headers=("Workers in total", "Batchsize per worker", "Training Method", "Top-1 Accuracy", "Δ vs MSGD"),
        paper_rows=PAPER_ROWS,
    )
    # MSGD reference at the workload's default batch: Table 3's batch-halving
    # protocol changes the iteration budget per row (epochs are fixed), and a
    # batch-128 single-node run is iteration-starved at micro scale.  The
    # reference therefore uses the calibrated batch so Δ measures the
    # asynchrony/compression penalty, not the iteration budget.
    msgd_acc, _ = mean_accuracy("msgd", wl, 1, seeds, fast)
    report.add_row(1, wl.batch_size, "MSGD", f"{100 * msgd_acc:.2f}%", "-")
    for n in worker_counts:
        bs = scaled_batch(n)
        hyper = scaling_hyper(wl, n)
        for method in ("asgd", "gd_async", "dgc_async", "dgs"):
            acc, _ = mean_accuracy(method, wl, n, seeds, fast, batch_size=bs, hyper=hyper)
            delta = 100 * (acc - msgd_acc)
            report.add_row(n, bs, METHOD_LABELS[method], f"{100 * acc:.2f}%", f"{delta:+.2f}%")
    report.add_note(
        "Expected shape: every method degrades as workers grow; ASGD degrades most, "
        "DGS least (paper: −4.71% vs −0.39% at 32 workers)."
    )
    report.add_note(
        "Momentum follows the paper's practice (reduced at scale, §5.1/§5.4); "
        "LR halved at 32 workers for the smaller per-worker batch (DESIGN.md §2)."
    )
    report.add_note(
        "Micro-scale caveat: with epochs fixed, halving the batch doubles the "
        "iteration count, which inflates mid-scale rows relative to the paper's "
        "long-run regime; compare methods within a row, and rows against MSGD."
    )
    return report
