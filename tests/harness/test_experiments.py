"""Experiment runners produce well-formed reports (fast mode).

The heavy experiments run at full scale only in benchmarks/; here each
runner is exercised at REPRO-fast scale to validate wiring and shapes.
"""

import pytest

from repro.harness import experiments as E
from repro.harness.report import ExperimentReport


def check_report(rep, min_rows=1):
    assert isinstance(rep, ExperimentReport)
    assert len(rep.rows) >= min_rows
    text = rep.render()
    assert rep.experiment_id in text
    md = rep.markdown()
    assert md.startswith("**") or md.startswith("|")
    return rep


class TestLightExperiments:
    def test_table5(self):
        rep = check_report(E.table5_techniques.run(), min_rows=4)
        labels = [r[0] for r in rep.rows]
        assert "DGS" in labels and "ASGD" in labels

    def test_memory_usage(self):
        rep = check_report(E.memory_usage.run(fast=True), min_rows=4)
        by_method = {r[0]: r for r in rep.rows}
        # ASGD pays no per-worker v_k at the server; DGS does.
        assert float(by_method["ASGD"][1]) < float(by_method["DGS"][1])
        # DGS per-worker state (1 buffer) < DGC per-worker state (2 buffers).
        assert float(by_method["DGS"][2]) < float(by_method["DGC-async"][2])


@pytest.mark.slow
class TestFigureExperiments:
    def test_fig6_speedup(self):
        rep = check_report(E.fig6_speedup.run(fast=True), min_rows=4)
        assert rep.figures

    def test_fig5_low_bandwidth(self):
        rep = check_report(E.fig5_low_bandwidth.run(fast=True), min_rows=2)
        methods = [r[0] for r in rep.rows]
        assert methods == ["ASGD", "DGS"]

    def test_fig2_curves(self):
        rep = check_report(E.fig2_cifar_curves.run(fast=True), min_rows=5)
        assert len(rep.figures) == 2

    def test_ablation_secondary(self):
        rep = check_report(E.ablation_secondary.run(fast=True), min_rows=2)

    def test_table2(self):
        rep = check_report(E.table2_accuracy.run(fast=True, seeds=(0,)), min_rows=10)

    def test_ablation_samomentum(self):
        rep = check_report(E.ablation_samomentum.run(fast=True, seeds=(0,)), min_rows=4)
