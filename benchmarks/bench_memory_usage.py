"""§5.6.2 — memory accounting: DGS moves worker memory to the server."""

from repro.harness.experiments import memory_usage
from repro.harness.config import is_fast_mode


def test_memory_usage(run_experiment):
    report = run_experiment(memory_usage, "memory_usage")
    if is_fast_mode():
        return  # smoke pass: shape assertions hold at full scale only
    rows = {r[0]: r for r in report.rows}
    # Paper's claims: ASGD server pays 1 model unit; difference tracking adds
    # 1 unit per worker; DGS worker holds 1 buffer vs DGC's 2; DGS and
    # GD-async totals are equal (memory moved, not added).
    assert float(rows["ASGD"][1]) == 1.0
    assert float(rows["DGS"][1]) == float(rows["GD-async"][1]) > 1.0
    assert float(rows["DGS"][2]) == 1.0
    assert float(rows["DGC-async"][2]) == 2.0
    assert float(rows["DGS"][3]) == float(rows["GD-async"][3])
