"""Grid sweep utility."""

import pytest

from repro.harness import get_workload
from repro.harness.sweep import SweepPoint, sweep


@pytest.fixture(scope="module")
def wl():
    return get_workload("blobs")


class TestSweep:
    def test_cartesian_grid(self, wl):
        points = sweep(
            wl,
            axes={"method": ["asgd", "dgs"], "num_workers": [2, 3]},
            base={"epochs": 1},
            fast=True,
        )
        assert len(points) == 4
        combos = {(p["method"], p["num_workers"]) for p in points}
        assert combos == {("asgd", 2), ("asgd", 3), ("dgs", 2), ("dgs", 3)}

    def test_hyper_axis_applied(self, wl):
        points = sweep(
            wl,
            axes={"ratio": [0.02, 0.5]},
            base={"epochs": 1, "min_sparse_size": 0},
            fast=True,
        )
        small, large = points
        assert small.result.upload_bytes < large.result.upload_bytes

    def test_unknown_axis_rejected(self, wl):
        with pytest.raises(ValueError):
            sweep(wl, axes={"bogus": [1]})

    def test_on_point_callback(self, wl):
        seen = []
        sweep(
            wl,
            axes={"num_workers": [2]},
            base={"epochs": 1},
            fast=True,
            on_point=lambda p: seen.append(p),
        )
        assert len(seen) == 1
        assert isinstance(seen[0], SweepPoint)

    def test_results_carry_simresult(self, wl):
        (point,) = sweep(wl, axes={"num_workers": [2]}, base={"epochs": 1}, fast=True)
        assert point.result.final_accuracy >= 0.0
        assert point.result.num_workers == 2
