"""§1/§6 ablation — synchronous vs asynchronous training on one simulator.

Two claims framed by the paper's introduction and conclusion:

* §1: SSGD "may suffer from worker lags" — with heterogeneous workers the
  barrier wastes straggler time, so async throughput wins;
* §6: "SAMomentum is a general design and can be used to design new
  synchronization training approaches" — running the DGS worker strategy
  under the synchronous barrier must still train well.
"""

from __future__ import annotations

from ...core.methods import Hyper
from ...sim.cluster import ClusterConfig, ComputeModel
from ...sim.engine import SimulatedTrainer
from ...sim.network import LinkModel
from ...sim.sync import SynchronousTrainer
from ..config import get_workload
from ..report import ExperimentReport
from .common import resolve_fast

__all__ = ["run"]


def _cluster(num_workers: int, heterogeneity: float, model, seed: int = 0) -> ClusterConfig:
    from ..config import RESNET18_WIRE_BYTES

    return ClusterConfig(
        num_workers=num_workers,
        compute=ComputeModel(mean_s=0.2, jitter=0.1, heterogeneity=heterogeneity),
        uplink=LinkModel.gbps(10),
        downlink=LinkModel.gbps(10),
        wire_scale=RESNET18_WIRE_BYTES / (4 * model.num_parameters()),
        duplex="half",
        seed=seed,
    )


def run(fast: bool | None = None, seeds: tuple[int, ...] = (0,)) -> ExperimentReport:
    fast = resolve_fast(fast)
    wl = get_workload("cifar10")
    seed = seeds[0]
    num_workers = 4 if fast else 8
    dataset = wl.dataset(fast)
    epochs = wl.epochs
    total_iters = max(1, epochs * dataset.n_train // wl.batch_size)
    rounds = max(1, total_iters // num_workers)
    factory = wl.model_factory(seed)

    report = ExperimentReport(
        experiment_id="Sec 1/6 (sync vs async)",
        title=f"SSGD barrier vs asynchronous training, {num_workers} workers",
        headers=("Cluster", "Method", "Top-1 Accuracy", "Throughput (samples/s)", "Barrier loss (s/worker)"),
    )
    for label, het in (("homogeneous", 0.0), ("stragglers (×2 spread)", 0.6)):
        cluster = _cluster(num_workers, het, factory(), seed)
        for mode, method in (("SSGD", "asgd"), ("sync-SAM (§6)", "dgs"), ("ASGD", "asgd"), ("DGS", "dgs")):
            if mode in ("SSGD", "sync-SAM (§6)"):
                r = SynchronousTrainer(
                    method, factory, dataset, cluster, wl.batch_size, rounds,
                    hyper=wl.hyper, schedule=wl.schedule(epochs), seed=seed,
                ).run()
                barrier = f"{r.straggler_time_s:.1f}"
            else:
                r = SimulatedTrainer(
                    method, factory, dataset, cluster, wl.batch_size, total_iters,
                    hyper=wl.hyper, schedule=wl.schedule(epochs), seed=seed,
                ).run()
                barrier = "-"
            report.add_row(label, mode, f"{100 * r.final_accuracy:.2f}%", f"{r.throughput:.0f}", barrier)
    report.add_note(
        "Expected shape: with stragglers, asynchronous throughput beats the barrier "
        "(§1); the synchronous SAMomentum variant trains to comparable accuracy (§6)."
    )
    return report
