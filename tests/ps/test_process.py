"""Multi-process PS trainer (real OS processes + binary wire codec)."""

import sys

import numpy as np
import pytest

from repro.core import Hyper
from repro.ps.process import ProcessTrainer

pytestmark = pytest.mark.skipif(
    sys.platform != "linux", reason="fork start method required"
)

HYPER = Hyper(lr=0.1, momentum=0.7, ratio=0.1, min_sparse_size=0)


def test_process_training_learns(tiny_dataset, tiny_model_factory):
    trainer = ProcessTrainer(
        "dgs", tiny_model_factory, tiny_dataset,
        num_workers=2, batch_size=16, iterations_per_worker=30,
        hyper=HYPER, seed=0,
    )
    r = trainer.run()
    assert r.server_timestamp == 60
    assert r.final_accuracy > 0.7
    assert len(r.loss_curve) == 60
    assert r.wire_bytes_up > 0 and r.wire_bytes_down > 0


def test_process_asgd_model_download(tiny_dataset, tiny_model_factory):
    trainer = ProcessTrainer(
        "asgd", tiny_model_factory, tiny_dataset,
        num_workers=2, batch_size=16, iterations_per_worker=15,
        hyper=HYPER, seed=0,
    )
    r = trainer.run()
    assert r.final_accuracy > 0.6
    # dense downloads dominate the wire
    assert r.wire_bytes_down > r.wire_bytes_up * 0.5


def test_sparse_method_ships_fewer_bytes(tiny_dataset, tiny_model_factory):
    def run(method):
        return ProcessTrainer(
            method, tiny_model_factory, tiny_dataset,
            num_workers=2, batch_size=16, iterations_per_worker=10,
            hyper=Hyper(lr=0.1, momentum=0.7, ratio=0.02, min_sparse_size=0),
            seed=0,
        ).run()

    dense = run("asgd")
    sparse = run("dgs")
    assert sparse.wire_bytes_up < dense.wire_bytes_up / 5


def test_msgd_rejected(tiny_dataset, tiny_model_factory):
    with pytest.raises(ValueError):
        ProcessTrainer("msgd", tiny_model_factory, tiny_dataset, 2, 16, 5)
