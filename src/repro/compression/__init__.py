"""Gradient compression: sparsifiers, quantiser, wire coding, accounting."""

from .adaptive import AdaptiveThresholdSparsifier
from .base import Sparsifier, sparsify, unsparsify
from .coding import (
    HEADER_BYTES,
    INDEX_BYTES,
    VALUE_BYTES,
    VALUE_DTYPE,
    BitmapTensor,
    DenseTensor,
    QuantizedSparseTensor,
    SparseTensor,
    bitmap_nbytes,
    dense_nbytes,
    encode_best,
    encode_indices,
    encode_mask,
    encode_sparse,
    sparse_nbytes,
)
from .qsgd import QSGDQuantizer, QSGDTensor
from .randomk import RandomKSparsifier
from .stats import CompressionStats
from .terngrad import TernaryTensor, TernGradQuantizer
from .threshold import ThresholdSparsifier
from .topk import TopKSparsifier, topk_mask, topk_select, topk_threshold
from .workspace import KernelWorkspace

__all__ = [
    "Sparsifier",
    "sparsify",
    "unsparsify",
    "TopKSparsifier",
    "topk_mask",
    "topk_select",
    "topk_threshold",
    "KernelWorkspace",
    "ThresholdSparsifier",
    "AdaptiveThresholdSparsifier",
    "RandomKSparsifier",
    "TernGradQuantizer",
    "QSGDQuantizer",
    "QSGDTensor",
    "TernaryTensor",
    "SparseTensor",
    "QuantizedSparseTensor",
    "BitmapTensor",
    "DenseTensor",
    "encode_sparse",
    "encode_best",
    "encode_mask",
    "encode_indices",
    "dense_nbytes",
    "sparse_nbytes",
    "bitmap_nbytes",
    "VALUE_BYTES",
    "VALUE_DTYPE",
    "INDEX_BYTES",
    "HEADER_BYTES",
    "CompressionStats",
]
