"""Opt-in hot-path profiling hooks: install, emit, restore."""

import numpy as np
import pytest

from repro.obs import HOT_PATH_GROUPS, Tracer, profile_hot_paths, use_tracer


def test_unknown_group_rejected():
    with pytest.raises(ValueError, match="unknown hot-path groups"):
        with profile_hot_paths(groups=("autograd", "gpu")):
            pass


def test_nothing_patched_outside_context():
    from repro.autograd import ops

    before = ops.conv2d
    with profile_hot_paths():
        assert ops.conv2d is not before
    assert ops.conv2d is before


def test_all_namespaces_patched_and_restored():
    """Names re-bound at import time must be patched in every namespace."""
    import repro.autograd as ag_pkg
    import repro.autograd.ops as ag_ops
    import repro.compression as comp_pkg
    import repro.compression.coding as comp_coding
    import repro.core.strategies as core_strategies
    import repro.comm.frames as comm_frames
    import repro.nn.conv as nn_conv
    import repro.ps as ps_pkg
    import repro.ps.codec as ps_codec

    originals = {
        "conv2d": ag_ops.conv2d,
        "encode_mask": comp_coding.encode_mask,
        "encode_message": ps_codec.encode_message,
    }
    with profile_hot_paths():
        assert ag_ops.conv2d is ag_pkg.conv2d is nn_conv.conv2d
        assert ag_ops.conv2d is not originals["conv2d"]
        assert comp_coding.encode_mask is comp_pkg.encode_mask is core_strategies.encode_mask
        assert ps_codec.encode_message is ps_pkg.encode_message is comm_frames.encode_message
    assert ag_ops.conv2d is ag_pkg.conv2d is nn_conv.conv2d is originals["conv2d"]
    assert comp_coding.encode_mask is originals["encode_mask"]
    assert ps_codec.encode_message is originals["encode_message"]


def test_nested_profiling_does_not_double_wrap():
    from repro.autograd import ops

    with profile_hot_paths():
        once = ops.conv2d
        with profile_hot_paths():
            assert ops.conv2d is once  # no second wrapper layer
        # inner exit must not strip the outer wrapper
        assert ops.conv2d is once


def test_compression_hook_emits_spans():
    from repro.compression.topk import TopKSparsifier

    tracer = Tracer()
    grad = np.arange(32, dtype=np.float32)
    with use_tracer(tracer), profile_hot_paths(groups=("compression",)):
        TopKSparsifier(ratio=0.25).mask(grad)
    names = {r["name"] for r in tracer.records()}
    assert "compression.topk.mask" in names


def test_codec_hook_emits_spans():
    from repro.compression.coding import SparseTensor
    from repro.ps import codec
    from repro.ps.messages import GradientMessage

    payload = {
        "w": SparseTensor(
            indices=np.array([1, 3], dtype=np.int64),
            values=np.array([0.5, -0.5], dtype=np.float64),
            shape=(8,),
        )
    }
    msg = GradientMessage(worker_id=0, payload=payload, local_iteration=1)
    tracer = Tracer()
    with use_tracer(tracer), profile_hot_paths(groups=("codec",)):
        # call through the module so the patched bindings are used
        codec.decode_message(codec.encode_message(msg))
    names = [r["name"] for r in tracer.records()]
    assert "codec.encode_message" in names
    assert "codec.decode_message" in names


def test_autograd_hook_emits_matmul_and_backward():
    from repro.autograd.tensor import Tensor

    tracer = Tracer()
    with use_tracer(tracer), profile_hot_paths(groups=("autograd",)):
        a = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
        b = Tensor(np.ones((3, 2), dtype=np.float32))
        out = a @ b
        out.backward(np.ones((2, 2), dtype=np.float32))
    names = {r["name"] for r in tracer.records()}
    assert "autograd.matmul" in names
    assert "autograd.backward" in names


def test_wrapped_functions_still_correct():
    """Profiling must not change numerics."""
    from repro.compression.topk import TopKSparsifier

    grad = np.array([0.1, -5.0, 0.2, 4.0], dtype=np.float32)
    plain = TopKSparsifier(ratio=0.5).mask(grad)
    with use_tracer(Tracer()), profile_hot_paths():
        hooked = TopKSparsifier(ratio=0.5).mask(grad)
    np.testing.assert_array_equal(plain, hooked)


def test_groups_constant_matches_implementation():
    assert set(HOT_PATH_GROUPS) == {"autograd", "compression", "codec"}
