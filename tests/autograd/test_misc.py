"""no_grad, detach, gradcheck utility, factories."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck, is_grad_enabled, no_grad, numerical_gradient
from repro.autograd.tensor import ones, zeros


class TestNoGrad:
    def test_context_disables_tape(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            out = a * 2.0
        assert is_grad_enabled()
        assert not out.requires_grad
        assert out._parents == ()

    def test_nested(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_new_tensors_dont_require_grad_inside(self):
        with no_grad():
            a = Tensor(np.ones(2), requires_grad=True)
        assert not a.requires_grad


class TestDetach:
    def test_detach_shares_data(self):
        a = Tensor(np.ones(3), requires_grad=True)
        d = a.detach()
        assert d.data is a.data
        assert not d.requires_grad

    def test_detach_blocks_gradient(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        out = (a.detach() * a).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, [2.0])  # only the non-detached path


class TestGradcheckUtility:
    def test_numerical_gradient_of_square(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        num = numerical_gradient(lambda a: (a * a).sum(), [a], wrt=0)
        np.testing.assert_allclose(num, [2.0, 4.0], atol=1e-5)

    def test_gradcheck_detects_wrong_gradient(self):
        class Bad(Tensor):
            pass

        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)

        def broken(x):
            # exp with a deliberately wrong backward: reuse identity
            out = Tensor(np.exp(x.data))
            out.requires_grad = True
            out._parents = (x,)
            out._backward = lambda g: x._accumulate(g)  # wrong!
            return out

        with pytest.raises(AssertionError):
            gradcheck(lambda a: broken(a).sum(), [a])

    def test_gradcheck_skips_non_grad_inputs(self):
        a = Tensor(np.ones(2), requires_grad=True)
        b = Tensor(np.ones(2))
        assert gradcheck(lambda a, b: (a * b).sum(), [a, b])


class TestMisc:
    def test_factories(self):
        z = zeros(3, requires_grad=True)
        o = ones((2, 2))
        assert z.requires_grad and z.shape == (3,)
        np.testing.assert_allclose(o.data, np.ones((2, 2)))

    def test_repr_contains_flag(self):
        a = Tensor(np.ones(2), requires_grad=True)
        assert "requires_grad=True" in repr(a)

    def test_item(self):
        assert Tensor(np.array([3.5])).item() == 3.5

    def test_len_and_size(self):
        a = Tensor(np.zeros((4, 2)))
        assert len(a) == 4 and a.size == 8 and a.ndim == 2
