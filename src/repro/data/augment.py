"""Image augmentation for the synthetic CIFAR/ImageNet pipelines.

The paper's training pipeline is the standard CIFAR/ImageNet recipe; the
two augmentations that matter at small resolution are random horizontal
flips and random shifts (the padded-crop equivalent).  Both are vectorised
over the batch.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Augmenter", "random_flip", "random_shift"]


def random_flip(x: np.ndarray, rng: np.random.Generator, p: float = 0.5) -> np.ndarray:
    """Horizontally flip each image (N, C, H, W) with probability ``p``."""
    if x.ndim != 4:
        raise ValueError(f"expected (N, C, H, W), got shape {x.shape}")
    flip = rng.random(len(x)) < p
    out = x.copy()
    out[flip] = out[flip, :, :, ::-1]
    return out


def random_shift(x: np.ndarray, rng: np.random.Generator, max_shift: int = 1) -> np.ndarray:
    """Shift each image by up to ``max_shift`` pixels (zero-padded crop)."""
    if x.ndim != 4:
        raise ValueError(f"expected (N, C, H, W), got shape {x.shape}")
    if max_shift == 0:
        return x
    n, c, h, w = x.shape
    pad = max_shift
    padded = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    out = np.empty_like(x)
    offsets = rng.integers(0, 2 * pad + 1, size=(n, 2))
    # Group by offset so each distinct shift is one vectorised slice.
    for dy in range(2 * pad + 1):
        for dx in range(2 * pad + 1):
            sel = (offsets[:, 0] == dy) & (offsets[:, 1] == dx)
            if sel.any():
                out[sel] = padded[sel, :, dy : dy + h, dx : dx + w]
    return out


class Augmenter:
    """Composable batch augmentation: flip + shift, deterministic per seed."""

    def __init__(self, flip: bool = True, max_shift: int = 1, seed: int = 0) -> None:
        if max_shift < 0:
            raise ValueError("max_shift must be non-negative")
        self.flip = flip
        self.max_shift = max_shift
        self._rng = np.random.default_rng(seed)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            return x  # non-image data passes through untouched
        if self.flip:
            x = random_flip(x, self._rng)
        if self.max_shift:
            x = random_shift(x, self._rng, self.max_shift)
        return x
