"""Parameter server behaviour in both downstream modes."""

import threading
from collections import OrderedDict

import numpy as np
import pytest

from repro.comm import GradientFrame, InProcChannel, ServerService
from repro.compression import encode_sparse
from repro.ps import DiffMessage, GradientMessage, ModelMessage, ParameterServer

SHAPES = OrderedDict([("w", (30,)), ("b", (6,))])


def exchange(srv, msg):
    """One worker↔server round-trip through the comm layer.

    Byte accounting lives in the channel (not in ``handle``), so tests that
    assert ``srv.stats`` must route messages the way trainers do.
    """
    channel = InProcChannel(ServerService(srv), msg.worker_id, stats=srv.stats)
    channel.send(GradientFrame(msg, loss=0.0))
    return channel.recv().message


def theta0(rng):
    return OrderedDict((n, rng.normal(size=s)) for n, s in SHAPES.items())


def grad_msg(rng, worker=0, scale=1.0):
    payload = OrderedDict()
    for n, s in SHAPES.items():
        arr = rng.normal(size=s) * scale
        arr[np.abs(arr) < 0.8 * scale] = 0.0
        payload[n] = encode_sparse(arr)
    return GradientMessage(worker, payload, 0)


class TestDifferenceMode:
    def test_reply_type(self, rng):
        srv = ParameterServer(theta0(rng), 2, downstream="difference")
        reply = srv.handle(grad_msg(rng))
        assert isinstance(reply, DiffMessage)

    def test_first_download_contains_full_M(self, rng):
        srv = ParameterServer(theta0(rng), 2, downstream="difference")
        msg = grad_msg(rng)
        reply = srv.handle(msg)
        np.testing.assert_allclose(reply.payload["w"].to_dense(), -msg.payload["w"].to_dense())

    def test_staleness_recorded(self, rng):
        srv = ParameterServer(theta0(rng), 2, downstream="difference")
        srv.handle(grad_msg(rng, worker=0))
        srv.handle(grad_msg(rng, worker=1))
        reply = srv.handle(grad_msg(rng, worker=0))
        assert reply.staleness == 1  # worker 1's update landed in between

    def test_stats_accumulate(self, rng):
        srv = ParameterServer(theta0(rng), 1, downstream="difference")
        exchange(srv, grad_msg(rng))
        assert srv.stats.upload_messages == 1
        assert srv.stats.download_messages == 1
        assert srv.stats.upload_bytes > 0

    def test_handle_does_not_account_bytes(self, rng):
        """Accounting is the channel's job: a direct handle() records nothing."""
        srv = ParameterServer(theta0(rng), 1, downstream="difference")
        srv.handle(grad_msg(rng))
        assert srv.stats.upload_messages == 0
        assert srv.stats.download_messages == 0

    def test_secondary_ratio_shrinks_download(self, rng):
        dense_srv = ParameterServer(theta0(rng), 1, downstream="difference")
        sparse_srv = ParameterServer(
            theta0(rng), 1, downstream="difference",
            secondary_ratio=0.05, secondary_min_sparse_size=0,
        )
        # several updates so the difference becomes dense-ish
        for _ in range(8):
            m = grad_msg(rng, scale=2.0)
            exchange(dense_srv, m)
            exchange(sparse_srv, GradientMessage(0, m.payload, 0))
        assert sparse_srv.stats.download_bytes < dense_srv.stats.download_bytes


class TestModelMode:
    def test_reply_is_full_model(self, rng):
        t0 = theta0(rng)
        srv = ParameterServer(t0, 1, downstream="model")
        msg = grad_msg(rng)
        reply = srv.handle(msg)
        assert isinstance(reply, ModelMessage)
        np.testing.assert_allclose(
            reply.payload["w"], t0["w"] - msg.payload["w"].to_dense()
        )

    def test_download_bytes_are_dense(self, rng):
        srv = ParameterServer(theta0(rng), 1, downstream="model")
        exchange(srv, grad_msg(rng))
        assert srv.stats.download_bytes == srv.stats.download_dense_bytes

    def test_invalid_downstream(self, rng):
        with pytest.raises(ValueError):
            ParameterServer(theta0(rng), 1, downstream="nope")


class TestGlobalModel:
    def test_matches_theta0_plus_M(self, rng):
        t0 = theta0(rng)
        srv = ParameterServer(t0, 1, downstream="difference")
        msg = grad_msg(rng)
        srv.handle(msg)
        model = srv.global_model()
        np.testing.assert_allclose(model["w"], t0["w"] - msg.payload["w"].to_dense())

    def test_timestamp(self, rng):
        srv = ParameterServer(theta0(rng), 1, downstream="difference")
        assert srv.timestamp == 0
        srv.handle(grad_msg(rng))
        assert srv.timestamp == 1


class TestThreadSafety:
    def test_concurrent_handles_consistent(self, rng):
        """Total M must equal the sum of all applied updates regardless of
        thread interleaving."""
        srv = ParameterServer(theta0(rng), 4, downstream="difference")
        msgs = [grad_msg(np.random.default_rng(i), worker=i % 4) for i in range(40)]
        expected = np.zeros(SHAPES["w"])
        for m in msgs:
            expected -= m.payload["w"].to_dense()

        def work(chunk):
            for m in chunk:
                srv.handle(m)

        threads = [threading.Thread(target=work, args=(msgs[i::4],)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert srv.timestamp == 40
        np.testing.assert_allclose(srv.tracker.M["w"], expected, atol=1e-12)
