"""Property test of the headline invariant: model-difference tracking is
exactly equivalent to downloading the whole model (Eq. 5), for arbitrary
update sequences and arbitrary worker sync interleavings."""

from collections import OrderedDict

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import TopKSparsifier, encode_sparse
from repro.core.tracker import ModelDifferenceTracker

N = 12  # single layer of 12 params


def _apply_random_schedule(draw_updates, sync_schedule, secondary=None):
    """Run a tracker against a list of (values, sync_worker|None) events."""
    shapes = OrderedDict([("w", (N,))])
    tr = ModelDifferenceTracker(shapes, 2, secondary=secondary)
    worker_theta = [np.zeros(N), np.zeros(N)]
    for values, sync in zip(draw_updates, sync_schedule):
        tr.apply_update(OrderedDict([("w", encode_sparse(np.asarray(values)))]))
        if sync is not None:
            G = tr.model_difference(sync)
            G["w"].add_into(worker_theta[sync])
    return tr, worker_theta


updates = st.lists(
    st.lists(
        st.floats(min_value=-10, max_value=10, allow_nan=False, width=64),
        min_size=N, max_size=N,
    ),
    min_size=1, max_size=15,
)


@given(
    upd=updates,
    syncs=st.lists(st.sampled_from([None, 0, 1]), min_size=15, max_size=15),
)
@settings(max_examples=100, deadline=None)
def test_final_sync_reconstructs_global_model(upd, syncs):
    """After one final sync, each worker's θ equals M exactly — no matter how
    stale or irregular the earlier sync pattern was."""
    tr, theta = _apply_random_schedule(upd, syncs[: len(upd)])
    for w in (0, 1):
        G = tr.model_difference(w)
        G["w"].add_into(theta[w])
        # atol covers float32 wire rounding of the downloaded diffs.
        np.testing.assert_allclose(theta[w], tr.M["w"], atol=1e-3)


@given(
    upd=updates,
    syncs=st.lists(st.sampled_from([None, 0, 1]), min_size=15, max_size=15),
    ratio=st.floats(min_value=0.05, max_value=1.0),
)
@settings(max_examples=60, deadline=None)
def test_secondary_compression_never_loses_mass(upd, syncs, ratio):
    """With secondary compression, (received so far) + (pending M − v) == M."""
    tr, theta = _apply_random_schedule(
        upd, syncs[: len(upd)], secondary=TopKSparsifier(ratio, min_sparse_size=0)
    )
    for w in (0, 1):
        pending = tr.M["w"] - tr.v[w]["w"]
        np.testing.assert_allclose(theta[w] + pending, tr.M["w"], atol=1e-9)
