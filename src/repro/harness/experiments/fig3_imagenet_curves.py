"""Figure 3 — learning curves on the ImageNet stand-in with 4 workers."""

from __future__ import annotations

from .common import resolve_fast
from .fig2_cifar_curves import build_report

__all__ = ["run"]


def run(fast: bool | None = None, seeds: tuple[int, ...] = (0,)):
    fast = resolve_fast(fast)
    return build_report(
        "Figure 3",
        "Learning curve of ResNet-18 stand-in on synthetic ImageNet with 4 workers",
        "imagenet",
        num_workers=4,
        fast=fast,
    )
