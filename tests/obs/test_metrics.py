"""Metrics registry, labeled series, and the ObsLogger JSONL sink."""

import json
import threading

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ObsLogger,
    Tracer,
    to_prometheus,
    validate_records,
)


class TestCounter:
    def test_inc(self):
        c = Counter("msgs")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        c = Counter("msgs")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_snapshot(self):
        c = Counter("up_bytes", {"method": "dgs"})
        c.inc(10)
        snap = c.snapshot()
        assert snap == {
            "type": "metric",
            "kind": "counter",
            "name": "up_bytes",
            "labels": {"method": "dgs"},
            "value": 10.0,
        }

    def test_thread_safe_increments(self):
        c = Counter("n")

        def work():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 4000


class TestGauge:
    def test_set_and_inc(self):
        g = Gauge("staleness")
        g.set(5)
        g.inc(-2)
        assert g.value == 3.0
        assert g.snapshot()["kind"] == "gauge"


class TestHistogram:
    def test_bucket_assignment(self):
        h = Histogram("lat", buckets=(0.001, 0.01, 0.1))
        for v in (0.0005, 0.005, 0.05, 5.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["counts"] == [1, 1, 1, 1]  # last slot = +Inf overflow
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(5.0555)

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRegistry:
    def test_get_or_create_same_series(self):
        reg = MetricsRegistry()
        a = reg.counter("bytes", method="dgs")
        b = reg.counter("bytes", method="dgs")
        assert a is b

    def test_distinct_labels_distinct_series(self):
        reg = MetricsRegistry()
        a = reg.counter("bytes", method="dgs")
        b = reg.counter("bytes", method="topk")
        assert a is not b

    def test_label_order_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.gauge("g", x=1, y=2)
        b = reg.gauge("g", y=2, x=1)
        assert a is b

    def test_snapshot_is_schema_valid(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1)
        reg.histogram("h").observe(0.5)
        snap = reg.snapshot()
        assert len(snap) == 3
        assert validate_records(snap) == []


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("up_bytes", method="dgs").inc(42)
        reg.gauge("staleness").set(3)
        text = to_prometheus(reg.snapshot())
        assert '# TYPE repro_up_bytes counter' in text
        assert 'repro_up_bytes{method="dgs"} 42.0' in text
        assert "repro_staleness 3.0" in text
        assert text.endswith("\n")

    def test_histogram_exposition_cumulative(self):
        h = Histogram("lat", buckets=(0.01, 0.1))
        h.observe(0.005)
        h.observe(0.05)
        h.observe(1.0)
        text = to_prometheus([h.snapshot()])
        assert 'repro_lat_bucket{le="0.01"} 1' in text
        assert 'repro_lat_bucket{le="0.1"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 3' in text
        assert "repro_lat_count 3" in text


class TestObsLogger:
    def test_log_step_matches_runlog_signature(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with ObsLogger(path, meta={"method": "dgs"}) as log:
            log.log_step(0, 1.25, time_s=0.5, worker=1, staleness=2, up_bytes=99)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0] == {"type": "meta", "method": "dgs"}
        assert lines[1] == {
            "type": "step",
            "step": 0,
            "loss": 1.25,
            "time_s": 0.5,
            "worker": 1,
            "staleness": 2,
            "up_bytes": 99,
        }

    def test_accepts_trainer_logger_duck_type(self):
        """Trainers call logger.log_step; ObsLogger must be a drop-in."""
        from repro.metrics.runlog import RunLogger

        assert set(ObsLogger.log_step.__code__.co_varnames[:6]) == set(
            RunLogger.log_step.__code__.co_varnames[:6]
        )

    def test_flushes_on_every_write(self, tmp_path):
        path = tmp_path / "run.jsonl"
        log = ObsLogger(path)
        log.log_step(0, 0.1)
        # readable before close — flush-on-write
        assert json.loads(path.read_text().splitlines()[0])["step"] == 0
        log.close()

    def test_close_idempotent(self, tmp_path):
        log = ObsLogger(tmp_path / "run.jsonl")
        log.close()
        log.close()

    def test_log_spans_and_metrics_single_stream(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tracer = Tracer()
        with tracer.span("a", cat="worker"):
            pass
        reg = MetricsRegistry()
        reg.counter("n").inc()
        with ObsLogger(path) as log:
            log.log_step(0, 0.5)
            log.log_spans(tracer.records())
            log.log_metrics(reg)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["type"] for r in records] == ["step", "span", "metric"]
        assert validate_records(records) == []
        assert log.steps() == [records[0]]

    def test_memory_only_mode(self):
        log = ObsLogger()
        log.log_step(1, 2.0)
        assert log.steps()[0]["loss"] == 2.0
