"""Exporters: Chrome trace validity, summaries, self-time, adapters."""

import json

from repro.obs import (
    Tracer,
    check_stream,
    load_jsonl,
    render_summary,
    render_top,
    self_times,
    spans_from_trace_events,
    span_record,
    summarize,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)


def _sample_records():
    return [
        {"type": "meta", "method": "dgs"},
        span_record("worker.step", 0.0, 1.0, "worker-0", cat="worker", domain="wall",
                    args={"worker": 0}),
        span_record("worker.compute", 0.1, 0.5, "worker-0", cat="worker", domain="wall"),
        span_record("comm.send", 0.0, 0.2, "worker-0", cat="comm", domain="virtual",
                    args={"bytes": 128}),
        span_record("server.handle", 0.2, 0.1, "server", cat="server", domain="virtual",
                    args={"down_bytes": 64}),
    ]


class TestChromeTrace:
    def test_is_json_serialisable_with_required_keys(self, tmp_path):
        """Satellite: json.loads + required ph/ts/dur keys."""
        path = tmp_path / "trace.json"
        write_chrome_trace(path, _sample_records())
        trace = json.loads(path.read_text())
        assert isinstance(trace["traceEvents"], list)
        x_events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(x_events) == 4
        for event in x_events:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(event)
            assert isinstance(event["ts"], (int, float))
            assert isinstance(event["dur"], (int, float))

    def test_validates_clean(self):
        assert validate_chrome_trace(to_chrome_trace(_sample_records())) == []

    def test_timestamps_are_microseconds(self):
        trace = to_chrome_trace(_sample_records())
        step = next(e for e in trace["traceEvents"] if e["name"] == "worker.step")
        assert step["ts"] == 0.0 and step["dur"] == 1_000_000.0

    def test_domains_become_process_lanes(self):
        trace = to_chrome_trace(_sample_records())
        events = trace["traceEvents"]
        wall = next(e for e in events if e["name"] == "worker.step")
        virt = next(e for e in events if e["name"] == "comm.send")
        assert wall["pid"] == 0 and virt["pid"] == 1
        names = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {0: "wall-clock", 1: "virtual-clock"}

    def test_thread_metadata_emitted(self):
        trace = to_chrome_trace(_sample_records())
        tnames = [
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert "worker-0" in tnames and "server" in tnames

    def test_meta_records_land_in_other_data(self):
        trace = to_chrome_trace(_sample_records(), meta={"seed": 1})
        assert trace["otherData"] == {"method": "dgs", "seed": 1}

    def test_validate_flags_bad_events(self):
        assert validate_chrome_trace({"traceEvents": None})
        bad = {"traceEvents": [{"name": "x", "ph": "B", "ts": 0}]}
        assert any("unsupported ph" in e for e in validate_chrome_trace(bad))
        bad = {"traceEvents": [{"name": "x", "ph": "X", "ts": 0.0, "dur": -1.0, "pid": 0, "tid": 0}]}
        assert any("negative dur" in e for e in validate_chrome_trace(bad))


class TestSummaries:
    def test_summarize_groups_by_domain_and_phase(self):
        rows = summarize(_sample_records())
        by_key = {(r["domain"], r["phase"]): r for r in rows}
        assert by_key[("wall", "worker")]["count"] == 2
        assert by_key[("virtual", "comm")]["bytes"] == 128
        assert by_key[("virtual", "server")]["bytes"] == 64
        virt_share = sum(r["share"] for r in rows if r["domain"] == "virtual")
        assert abs(virt_share - 1.0) < 1e-9

    def test_render_summary_includes_metrics_table(self):
        records = [*_sample_records(), {"type": "metric", "kind": "counter", "name": "n",
                                        "labels": {"w": "0"}, "value": 3.0}]
        text = render_summary(records)
        assert "per-phase span totals" in text
        assert "metric snapshots" in text
        assert "w=0" in text

    def test_self_times_subtract_children(self):
        records = [
            span_record("outer", 0.0, 1.0, "t0"),
            span_record("inner", 0.2, 0.5, "t0"),
        ]
        rows = {r["name"]: r for r in self_times(records)}
        assert rows["outer"]["total_s"] == 1.0
        assert abs(rows["outer"]["self_s"] - 0.5) < 1e-9
        assert rows["inner"]["self_s"] == 0.5

    def test_self_times_separate_lanes(self):
        # identical intervals in different lanes must not nest
        records = [
            span_record("a", 0.0, 1.0, "t0"),
            span_record("b", 0.0, 1.0, "t1"),
        ]
        rows = {r["name"]: r for r in self_times(records)}
        assert rows["a"]["self_s"] == 1.0 and rows["b"]["self_s"] == 1.0

    def test_render_top_limits(self):
        text = render_top(_sample_records(), n=2)
        assert "top 2 spans" in text


class TestAdapters:
    def test_spans_from_trace_events_roundtrip(self):
        from repro.core.methods import Hyper
        from repro.data.synthetic import make_blobs
        from repro.nn.models.mlp import MLP
        from repro.sim.cluster import ClusterConfig
        from repro.sim.engine import SimulatedTrainer

        trainer = SimulatedTrainer(
            "dgs",
            lambda: MLP(12, (24,), 4, seed=7),
            make_blobs(n_samples=256, num_classes=4, dim=12, seed=1),
            ClusterConfig.with_bandwidth(2, 10, compute_mean_s=0.01),
            batch_size=16,
            total_iterations=6,
            hyper=Hyper(ratio=0.1, min_sparse_size=0),
            record_trace=True,
            seed=0,
        )
        result = trainer.run()
        records = spans_from_trace_events(result.trace)
        assert check_stream(records) == []
        names = {r["name"] for r in records}
        assert names == {"worker.compute", "comm.send", "server.handle", "comm.recv"}
        up = sum(r["args"]["bytes"] for r in records if r["name"] == "comm.send")
        assert up == sum(e.up_bytes for e in result.trace)

    def test_check_stream_catches_schema_violation(self):
        assert check_stream([{"type": "span", "name": "x"}]) != []


def test_load_jsonl_skips_blank_lines(tmp_path):
    path = tmp_path / "s.jsonl"
    path.write_text('{"type": "meta"}\n\n{"type": "step", "step": 0, "loss": 1.0}\n')
    records = load_jsonl(path)
    assert len(records) == 2


def test_dump_then_check_stream(tmp_path):
    tracer = Tracer(meta={"k": "v"})
    with tracer.span("a"):
        pass
    path = tmp_path / "t.jsonl"
    tracer.dump_jsonl(path)
    assert check_stream(load_jsonl(path)) == []
