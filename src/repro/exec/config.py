"""Backend-independent run description.

One :class:`RunConfig` captures everything any of the four execution
backends needs to set up a distributed training run — the union of what
the ``ThreadedTrainer`` / ``ProcessTrainer`` / ``SimulatedTrainer`` /
``SynchronousTrainer`` constructors historically took.  Fields a backend
does not understand are ignored (and documented as such); the conversions
between the one global iteration budget and each engine's native knob
(per-worker iterations, barrier rounds) live here so every backend slices
the same amount of optimisation work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.methods import Hyper, MethodSpec
from ..data.synthetic import Dataset
from ..nn.module import Module
from ..optim.schedules import Schedule
from ..sim.cluster import ClusterConfig

__all__ = ["RunConfig"]


@dataclass
class RunConfig:
    """Everything needed to run one distributed training job anywhere."""

    #: method registry name or spec ("asgd", "gd_async", "dgc_async", "dgs")
    method: "MethodSpec | str"
    #: zero-arg factory for a fresh model replica (same seed ⇒ same θ0)
    model_factory: Callable[[], Module]
    dataset: Dataset
    num_workers: int
    batch_size: int
    #: global gradient-computation budget, shared across workers.  Threaded
    #: and process backends run ``iterations_per_worker()`` each; the sync
    #: backend runs ``rounds()`` barriers of ``num_workers`` gradients.
    total_iterations: int
    hyper: "Hyper | None" = None
    schedule: "Schedule | None" = None
    #: None ⇒ the method's default (``MethodSpec.secondary_default``)
    secondary_compression: "bool | None" = None
    #: gap-aware damping (paper ref. [4]); no-op under the sync barrier
    staleness_damping: bool = False
    #: partition the parameter server across N independently locked shards
    #: (whole layers, greedy by byte size — see docs/execution.md
    #: "Sharding").  1 ⇒ today's single-lock server; no-op under the sync
    #: barrier, which has no parameter server.
    num_shards: int = 1
    #: parallel shard serving (process/socket backends): the serve loop
    #: demuxes shard-addressed sub-frames onto per-shard executor lanes
    #: (process) or per-shard listeners (socket), workers fan each step
    #: out along the server's partition.  Requires ``num_shards >= 2``;
    #: see docs/performance.md "Parallel shard serving".
    shard_parallel: bool = False
    seed: int = 0
    #: virtual-cluster model; used by the simulated/sync backends only
    #: (None ⇒ a symmetric 10 Gb/s default via ``resolved_cluster()``)
    cluster: "ClusterConfig | None" = None
    #: periodic accuracy evaluation (simulated backend only)
    eval_every: "int | None" = None
    #: record the per-exchange virtual timeline (simulated backend only)
    record_trace: bool = False
    #: crash injection, worker id → local iteration.  Simulated backend:
    #: the worker silently stops producing updates.  Process backend: the
    #: worker process hard-exits mid-run (no close frame), exercising the
    #: comm layer's crash path — the run returns a partial result with the
    #: crash recorded in ``TrainResult.errors``.
    fail_at: "dict[int, int] | None" = None
    #: flat-buffer parameter arenas + allocation-free kernels (the hot
    #: path; see docs/performance.md).  False reruns the dict-of-float64
    #: reference implementation the property tests compare against.
    arena: bool = True
    #: arena buffer dtype; None ⇒ float32 (the wire dtype).  Pass
    #: ``"float64"`` to make the arena path bitwise-identical to the
    #: reference path (used by the parity tests).
    arena_dtype: "str | None" = None
    #: threaded backend only: round-trip every frame through the byte codec
    #: (float32 wire precision), matching what the process backend ships
    #: over real pipes — at thread speed
    wire_fidelity: bool = False
    #: per-step telemetry sink, e.g. repro.metrics.RunLogger (simulated only)
    logger: "object | None" = None
    #: repro.obs tracer; None ⇒ the ambient tracer at run time
    tracer: "object | None" = None
    #: run the elastic-membership join/leave handshake around each worker
    #: loop (threaded backend; the socket backend always registers)
    register: bool = False
    #: write a server checkpoint (repro.ps.checkpoint format) every N
    #: applied updates; requires ``checkpoint_path``.  Threaded and socket
    #: backends only.
    checkpoint_every: "int | None" = None
    checkpoint_path: "str | None" = None
    #: restore server state from this checkpoint before training and
    #: fast-forward each worker's data stream by its recorded update count
    restore_from: "str | None" = None
    #: socket backend: evict a worker silent for this many seconds
    #: (straggler timeout + per-channel read deadline)
    evict_after_s: "float | None" = None
    #: socket backend: worker id → seconds to delay its connect (mid-run
    #: elastic joins)
    join_delay_s: "dict[int, float] | None" = None
    #: socket backend: (host, port) for the server listener; None ⇒
    #: loopback with an ephemeral port (the CI default)
    bind: "tuple[str, int] | None" = None

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.total_iterations < 1:
            raise ValueError("total_iterations must be >= 1")
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.shard_parallel and self.num_shards < 2:
            raise ValueError("shard_parallel requires num_shards >= 2")
        if self.checkpoint_every is not None and self.checkpoint_path is None:
            raise ValueError("checkpoint_every requires checkpoint_path")

    # ------------------------------------------------------------------
    def iterations_per_worker(self) -> int:
        """Per-worker share of the global budget (threaded/process backends)."""
        return max(1, self.total_iterations // self.num_workers)

    def rounds(self) -> int:
        """Barrier rounds covering the global budget (sync backend).

        Each round applies ``num_workers`` gradients (Eq. 7 sums the
        per-worker updates), so ``rounds × num_workers`` gradient
        computations match the asynchronous backends' budget.
        """
        return max(1, self.total_iterations // self.num_workers)

    def resolved_cluster(self) -> ClusterConfig:
        """The configured cluster, or a symmetric 10 Gb/s default."""
        if self.cluster is not None:
            return self.cluster
        return ClusterConfig.with_bandwidth(self.num_workers, 10.0, seed=self.seed)

    def describe(self) -> "dict[str, object]":
        """JSON-serialisable summary of the *resolved* configuration.

        This is what a run manifest records: scalar knobs verbatim, and
        the non-serialisable members (model factory, dataset, hyper,
        schedule, cluster, logger, tracer) reduced to descriptive strings
        — enough to identify a run, not to re-execute it.
        """
        method = self.method if isinstance(self.method, str) else self.method.name
        return {
            "method": method,
            "num_workers": self.num_workers,
            "batch_size": self.batch_size,
            "total_iterations": self.total_iterations,
            "iterations_per_worker": self.iterations_per_worker(),
            "rounds": self.rounds(),
            "seed": self.seed,
            "secondary_compression": self.secondary_compression,
            "staleness_damping": self.staleness_damping,
            "num_shards": self.num_shards,
            "shard_parallel": self.shard_parallel,
            "arena": self.arena,
            "arena_dtype": self.arena_dtype,
            "wire_fidelity": self.wire_fidelity,
            "eval_every": self.eval_every,
            "record_trace": self.record_trace,
            "fail_at": dict(self.fail_at) if self.fail_at else None,
            "register": self.register,
            "checkpoint_every": self.checkpoint_every,
            "checkpoint_path": self.checkpoint_path,
            "restore_from": self.restore_from,
            "evict_after_s": self.evict_after_s,
            "join_delay_s": dict(self.join_delay_s) if self.join_delay_s else None,
            "bind": list(self.bind) if self.bind is not None else None,
            "hyper": repr(self.hyper) if self.hyper is not None else None,
            "schedule": type(self.schedule).__name__ if self.schedule is not None else None,
            "cluster": repr(self.cluster) if self.cluster is not None else None,
            "dataset": f"{type(self.dataset).__name__}(n={len(getattr(self.dataset, 'x_train', ()))})",
            "traced": self.tracer is not None and bool(getattr(self.tracer, "enabled", False)),
        }
