"""Failure injection and staleness damping in the simulated engine."""

import numpy as np
import pytest

from repro.core import Hyper
from repro.sim import ClusterConfig, SimulatedTrainer

HYPER = Hyper(lr=0.1, momentum=0.7, ratio=0.1, min_sparse_size=0)


def make(tiny_dataset, tiny_model_factory, **kw):
    defaults = dict(
        cluster=ClusterConfig.with_bandwidth(4, 10, compute_mean_s=0.02),
        batch_size=16,
        total_iterations=120,
        hyper=HYPER,
        seed=0,
    )
    defaults.update(kw)
    return SimulatedTrainer("dgs", tiny_model_factory, tiny_dataset, **defaults)


class TestFailureInjection:
    def test_training_survives_worker_crash(self, tiny_dataset, tiny_model_factory):
        r = make(tiny_dataset, tiny_model_factory, fail_at={3: 5}).run()
        assert r.total_iterations == 120  # survivors pick up the budget
        assert r.final_accuracy > 0.7

    def test_dead_worker_stops_contributing(self, tiny_dataset, tiny_model_factory):
        trainer = make(tiny_dataset, tiny_model_factory, fail_at={3: 5})
        trainer.run()
        assert trainer.workers[3].iteration == 5
        assert all(trainer.workers[w].iteration > 5 for w in range(3))

    def test_all_workers_crashing_ends_early(self, tiny_dataset, tiny_model_factory):
        trainer = make(
            tiny_dataset, tiny_model_factory, fail_at={w: 3 for w in range(4)}
        )
        r = trainer.run()
        assert r.total_iterations == 4 * 3

    def test_crash_at_zero_contributes_nothing(self, tiny_dataset, tiny_model_factory):
        trainer = make(tiny_dataset, tiny_model_factory, fail_at={0: 0})
        trainer.run()
        assert trainer.workers[0].iteration == 0

    def test_dead_worker_staleness_grows(self, tiny_dataset, tiny_model_factory):
        trainer = make(tiny_dataset, tiny_model_factory, fail_at={3: 2})
        trainer.run()
        # Server still tracks the dead worker; its gap keeps growing.
        assert trainer.server.tracker.staleness(3) > 50


class TestStalenessDamping:
    def test_damping_changes_trajectory(self, tiny_dataset, tiny_model_factory):
        base = make(tiny_dataset, tiny_model_factory).run()
        damped = make(tiny_dataset, tiny_model_factory, staleness_damping=True).run()
        assert base.final_loss != damped.final_loss

    def test_damped_update_is_scaled(self, rng):
        """Direct server check: an update arriving with staleness s is
        applied scaled by 1/(s+1)."""
        from collections import OrderedDict

        from repro.compression import encode_sparse
        from repro.ps import GradientMessage, ParameterServer

        theta0 = OrderedDict([("w", np.zeros(10))])
        srv = ParameterServer(theta0, 2, downstream="difference", staleness_damping=True)
        g = np.zeros(10)
        g[0] = 1.0
        # worker 1 pushes twice -> worker 0's next update has staleness 2
        for _ in range(2):
            srv.handle(GradientMessage(1, OrderedDict([("w", encode_sparse(g))]), 0))
        m_before = srv.tracker.M["w"].copy()
        srv.handle(GradientMessage(0, OrderedDict([("w", encode_sparse(g))]), 0))
        applied = m_before[0] - srv.tracker.M["w"][0]
        assert applied == pytest.approx(1.0 / 3.0)

    def test_damping_still_learns(self, tiny_dataset, tiny_model_factory):
        r = make(tiny_dataset, tiny_model_factory, staleness_damping=True,
                 total_iterations=200).run()
        assert r.final_accuracy > 0.7
