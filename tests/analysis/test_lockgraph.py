"""Whole-program lock-acquisition graph tests (LCK004/LCK005)."""

from __future__ import annotations

from collections import Counter
from pathlib import Path

from repro.analysis.concurrency import build_lock_graph, check_lock_graph

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def fixture_findings(name: str):
    return check_lock_graph(FIXTURES, paths=[FIXTURES / name])


class TestAbbaCycle:
    def test_exactly_one_lck004(self):
        counts = Counter(f.rule for f in fixture_findings("abba.py"))
        assert counts == {"LCK004": 1}

    def test_finding_names_both_classes(self):
        (f,) = fixture_findings("abba.py")
        assert "abba.Ledger" in f.message and "abba.Auditor" in f.message
        assert "ABBA" in f.message

    def test_graph_structure(self):
        graph = build_lock_graph(FIXTURES, paths=[FIXTURES / "abba.py"])
        assert set(graph.nodes) == {"abba.Ledger", "abba.Auditor"}
        edges = {(e.src, e.dst) for e in graph.edges}
        assert ("abba.Ledger", "abba.Auditor") in edges
        assert ("abba.Auditor", "abba.Ledger") in edges
        assert graph.cycles() == [["abba.Auditor", "abba.Ledger"]]

    def test_edges_carry_call_path_witness(self):
        graph = build_lock_graph(FIXTURES, paths=[FIXTURES / "abba.py"])
        vias = {e.via for e in graph.edges}
        assert "Ledger.transfer -> Auditor.observe" in vias
        assert "Auditor.reconcile -> Ledger.balance" in vias


class TestShardAbbaCycle:
    """A deliberate cross-shard nesting inversion must be caught.

    The sharded parameter server stays cycle-free by fanning out one
    shard at a time; this fixture reintroduces the classic mistake —
    reading a sibling shard while holding your own lock, in both
    directions — and pins down that the graph checker reports it as
    exactly one LCK004 cycle."""

    def test_exactly_one_lck004(self):
        counts = Counter(f.rule for f in fixture_findings("shard_abba.py"))
        assert counts == {"LCK004": 1}

    def test_finding_names_both_shard_classes(self):
        (f,) = fixture_findings("shard_abba.py")
        assert "shard_abba.ShardAlpha" in f.message
        assert "shard_abba.ShardBeta" in f.message
        assert "ABBA" in f.message

    def test_edges_carry_cross_shard_witnesses(self):
        graph = build_lock_graph(FIXTURES, paths=[FIXTURES / "shard_abba.py"])
        assert set(graph.nodes) == {"shard_abba.ShardAlpha", "shard_abba.ShardBeta"}
        vias = {e.via for e in graph.edges}
        assert "ShardAlpha.apply -> ShardBeta.total" in vias
        assert "ShardBeta.rebalance -> ShardAlpha.total" in vias

    def test_dynamic_registry_records_the_inversion(self):
        import importlib.util

        from repro.analysis.concurrency import LockRegistry

        spec = importlib.util.spec_from_file_location(
            "shard_abba", FIXTURES / "shard_abba.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        registry = LockRegistry()
        module.drive(registry)
        inversions = registry.inversions()
        assert inversions, "both nesting orders ran; the registry must object"


class TestBlockingUnderLock:
    def test_exactly_three_lck005(self):
        counts = Counter(f.rule for f in fixture_findings("blocking_locks.py"))
        assert counts == {"LCK005": 3}

    def test_direct_send_and_recv_flagged(self):
        messages = [f.message for f in fixture_findings("blocking_locks.py")]
        assert any("push" in m and ".send()" in m for m in messages)
        assert any("pull" in m and ".recv()" in m for m in messages)

    def test_blocking_through_private_helper_flagged(self):
        # flush() holds the lock and calls _drain(), which sends: the
        # finding must surface the call chain, not just the leaf.
        (f,) = [f for f in fixture_findings("blocking_locks.py") if "flush" in f.message]
        assert "_drain" in f.message

    def test_snapshot_then_send_pattern_accepted(self):
        assert not any("safe_push" in f.message for f in fixture_findings("blocking_locks.py"))


class TestSuppression:
    def test_noqa_on_offending_line_suppresses(self, tmp_path):
        source = (FIXTURES / "blocking_locks.py").read_text()
        patched = source.replace(
            "self.channel.send(item)  # blocks while holding the lock",
            "self.channel.send(item)  # repro: noqa LCK005",
        )
        target = tmp_path / "blocking_locks.py"
        target.write_text(patched)
        counts = Counter(f.rule for f in check_lock_graph(tmp_path, paths=[target]))
        assert counts == {"LCK005": 2}


def test_src_tree_has_no_cycles_or_blocking_calls():
    findings = check_lock_graph(SRC)
    assert findings == [], [f.format() for f in findings]


def test_src_tree_graph_enrolls_known_lock_owners():
    graph = build_lock_graph(SRC)
    # the `_lock` convention finds the PS; the explicit registry adds the
    # differently-named locks (CompressionStats._mu, Tracer._merge_lock)
    assert "ps.server.ParameterServer" in graph.nodes
    assert "compression.stats.CompressionStats" in graph.nodes
    assert "obs.tracer.Tracer" in graph.nodes
    # ParameterShard inherits its lock from ParameterServer.__init__, so
    # convention discovery can't see it — the registry entry must
    assert "ps.sharded.ParameterShard" in graph.nodes
