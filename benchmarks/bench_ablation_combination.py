"""§6 — combinations of DGS with other compression approaches."""

from repro.harness.experiments import ablation_combination
from repro.harness.config import is_fast_mode


def test_ablation_combination(run_experiment):
    report = run_experiment(ablation_combination, "ablation_combination")
    if is_fast_mode():
        return  # smoke pass: shape assertions hold at full scale only
    rows = {r[0]: r for r in report.rows}
    up = lambda name: float(rows[name][2].rstrip("x"))
    # The ternary-value combination compresses uploads harder than plain DGS.
    assert up("dgs_terngrad") > up("dgs")
    acc = lambda name: float(rows[name][1].rstrip("%"))
    # And still trains (within a few points of DGS on the micro workload).
    assert acc("dgs_terngrad") > acc("dgs") - 6.0
