"""Setup shim: enables legacy editable installs where the offline
environment lacks the ``wheel`` package needed for PEP-517 editables."""
from setuptools import setup

setup()
