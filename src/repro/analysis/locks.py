"""LCK001–LCK003 — static lock discipline for lock-owning classes.

A class opts into checking by assigning ``self._lock`` (a
``threading.Lock``/``RLock`` or compatible wrapper) in ``__init__`` — the
convention :class:`repro.ps.server.ParameterServer` follows.  For every such
class the checker verifies, per method:

* **LCK001** — every *touch* of guarded state happens while holding the
  lock.  Guarded state is (a) ``self._``-prefixed attributes (other than the
  lock itself) and (b) any attribute the class mutates outside ``__init__``
  — assigned, augmented, subscript-assigned, or used as the receiver of a
  method call (``self.tracker.apply_update(...)`` marks ``tracker``).
  Reads count: an unlocked read races with a locked writer.
* a *private* method (leading underscore) may touch state unlocked **iff**
  every in-class call site runs under the lock (computed by fixpoint over
  the intra-class call graph).  A private method that touches guarded state
  but has no in-class caller is unverifiable → **LCK002**.
* **LCK003** — a method calls (or reads a property of) another method that
  acquires ``self._lock`` while already holding it: ``threading.Lock`` is
  non-reentrant, so this self-deadlocks.
* **LCK006** — bare ``self._lock.acquire()`` / ``.release()`` calls (not
  via ``with``): a release outside a ``finally`` leaks the lock on any
  exception in between, and an acquire with no release at all in the same
  method never gives it back.  Statement-level acquire/release pairs *are*
  tracked as locked regions, so code between them is not double-reported
  as LCK001.

The analysis is lexical: it sees ``with self._lock:`` blocks and
statement-level ``.acquire()``/``.release()`` calls — which is exactly the
discipline the repo enforces.  Suppress a finding with
``# repro: noqa LCK001`` on the line.  Cross-*object* lock nesting (ABBA
deadlocks, lock-held channel blocking) is the whole-program
:mod:`repro.analysis.concurrency.lockgraph` checker's job (LCK004/LCK005).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

from .findings import Finding, filter_suppressed
from .linter import ModuleInfo, iter_python_files, load_module

__all__ = [
    "check_lock_discipline",
    "check_lock_discipline_module",
    "find_lock_classes",
]

#: receiver methods that never mutate the receiver — calling these does not
#: make the attribute "guarded state" by itself
_READONLY_METHODS = {"values", "items", "keys", "get", "copy", "index", "count"}


def _self_attr(node: ast.expr) -> "str | None":
    """``self.X`` → ``'X'`` (for a plain one-level attribute access)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _base_self_attr(node: ast.expr) -> "str | None":
    """Base attribute of a chain rooted at self: ``self.Y.Z[i]`` → ``'Y'``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        parent = node.value
        if isinstance(node, ast.Attribute) and isinstance(parent, ast.Name) and parent.id == "self":
            return node.attr
        node = parent
    return None


def _detect_lock_attr(init: "ast.FunctionDef | None") -> "str | None":
    """The opt-in lock attribute bound in ``__init__``, if any.

    Discipline checking is opt-in by convention: the class names its lock
    exactly ``self._lock`` (any value — ``threading.Lock``, ``RLock`` or a
    wrapper like :class:`repro.analysis.race.CheckedLock`).  Narrower
    special-purpose locks (``self._loss_lock`` guarding a single curve) do
    not enroll the whole class.
    """
    if init is None:
        return None
    for node in ast.walk(init):
        if not isinstance(node, ast.Assign):
            continue
        for tgt in node.targets:
            if _self_attr(tgt) == "_lock":
                return "_lock"
    return None


@dataclass
class _MethodFacts:
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    is_private: bool
    is_property: bool
    acquires_lock: bool = False
    #: guarded-state touches: (ast node, attr name, under_lock)
    touches: "list[tuple[ast.AST, str, bool]]" = field(default_factory=list)
    #: intra-class calls/property reads: (ast node, method name, under_lock)
    calls: "list[tuple[ast.AST, str, bool]]" = field(default_factory=list)
    #: bare ``self._lock.acquire()`` / ``.release()`` call nodes (LCK006)
    bare_acquires: "list[ast.Call]" = field(default_factory=list)
    bare_releases: "list[ast.Call]" = field(default_factory=list)


class _ClassAnalysis:
    """All per-method facts for one lock-owning class."""

    def __init__(self, cls: ast.ClassDef, lock_attr: str) -> None:
        self.cls = cls
        self.lock_attr = lock_attr
        self.methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.methods[stmt.name] = stmt
        self.properties = {
            name
            for name, fn in self.methods.items()
            if any(isinstance(d, ast.Name) and d.id == "property" for d in fn.decorator_list)
        }
        self.guarded = self._guarded_attrs()
        self.facts = {
            name: self._analyze_method(fn)
            for name, fn in self.methods.items()
            if name != "__init__"
        }

    # ------------------------------------------------------------------
    def _guarded_attrs(self) -> "set[str]":
        guarded: set[str] = set()
        for name, fn in self.methods.items():
            for node in ast.walk(fn):
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                    # method call on self.Y(.Z…): conservatively a mutation of Y
                    base = _base_self_attr(node.func.value)
                    if (
                        base is not None
                        and base not in self.methods
                        and node.func.attr not in _READONLY_METHODS
                    ):
                        guarded.add(base)
                for tgt in targets:
                    base = _base_self_attr(tgt)
                    if base is not None:
                        if name == "__init__" and _self_attr(tgt) == base:
                            continue  # plain construction in __init__
                        guarded.add(base)
        for fn in self.methods.values():
            for node in ast.walk(fn):
                attr = _self_attr(node)
                if attr is not None and attr.startswith("_") and not attr.startswith("__"):
                    guarded.add(attr)
        guarded.discard(self.lock_attr)
        guarded.difference_update(self.methods)
        return guarded

    # ------------------------------------------------------------------
    def _is_lock_with(self, node: ast.With) -> bool:
        return any(_self_attr(item.context_expr) == self.lock_attr for item in node.items)

    def _bare_lock_call(self, node: ast.AST, op: str) -> "ast.Call | None":
        """``self.<lock>.acquire()`` / ``.release()`` as a statement's call."""
        if isinstance(node, ast.Expr):
            node = node.value
        elif isinstance(node, ast.Assign):
            node = node.value
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == op
            and _self_attr(node.func.value) == self.lock_attr
        ):
            return node
        return None

    def _analyze_method(self, fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> _MethodFacts:
        facts = _MethodFacts(
            node=fn,
            is_private=fn.name.startswith("_") and not fn.name.startswith("__"),
            is_property=fn.name in self.properties,
        )

        def visit(node: ast.AST, under: bool) -> None:
            if isinstance(node, ast.With) and self._is_lock_with(node):
                facts.acquires_lock = True
                for item in node.items:
                    visit(item, under)
                visit_block(node.body, True)
                return
            if isinstance(node, ast.Call):
                callee = _self_attr(node.func)
                if callee is not None and callee in self.methods:
                    facts.calls.append((node, callee, under))
                    for arg in node.args:
                        visit(arg, under)
                    for kw in node.keywords:
                        visit(kw, under)
                    return
            if isinstance(node, ast.Attribute):
                attr = _self_attr(node)
                if attr is not None:
                    if attr in self.guarded:
                        facts.touches.append((node, attr, under))
                    elif attr in self.properties:
                        facts.calls.append((node, attr, under))
                    return
            for child in ast.iter_child_nodes(node):
                visit(child, under)

        def visit_stmt(node: ast.stmt, under: bool) -> bool:
            """Visit one statement; return the lock state *after* it.

            Statement-level ``acquire()``/``release()`` toggle the lexical
            lock state so bare-locked regions are not misreported as
            LCK001; the calls themselves are recorded for LCK006.
            """
            acquire = self._bare_lock_call(node, "acquire")
            if acquire is not None:
                facts.acquires_lock = True
                facts.bare_acquires.append(acquire)
                return True
            release = self._bare_lock_call(node, "release")
            if release is not None:
                facts.bare_releases.append(release)
                return False
            if isinstance(node, ast.Try):
                after_body = visit_block(node.body, under)
                for handler in node.handlers:
                    visit_block(handler.body, under)
                visit_block(node.orelse, after_body)
                return visit_block(node.finalbody, after_body)
            if isinstance(node, (ast.If, ast.While)):
                visit(node.test, under)
                visit_block(node.body, under)
                visit_block(node.orelse, under)
                return under
            if isinstance(node, (ast.For, ast.AsyncFor)):
                visit(node.target, under)
                visit(node.iter, under)
                visit_block(node.body, under)
                visit_block(node.orelse, under)
                return under
            visit(node, under)
            return under

        def visit_block(stmts: "Sequence[ast.stmt]", under: bool) -> bool:
            for stmt in stmts:
                under = visit_stmt(stmt, under)
            return under

        visit_block(fn.body, False)
        return facts

    # ------------------------------------------------------------------
    def always_locked(self) -> "dict[str, bool]":
        """Fixpoint: which methods can only ever run with the lock held."""
        locked = {
            name: f.is_private and any(True for _ in self._call_sites(name))
            for name, f in self.facts.items()
        }
        changed = True
        while changed:
            changed = False
            for name, f in self.facts.items():
                if not locked.get(name):
                    continue
                for caller, _, under in self._call_sites(name):
                    if not under and not locked.get(caller, False):
                        locked[name] = False
                        changed = True
                        break
        return locked

    def _call_sites(self, method: str) -> "Iterator[tuple[str, ast.AST, bool]]":
        for caller, f in self.facts.items():
            for node, callee, under in f.calls:
                if callee == method:
                    yield caller, node, under

    # ------------------------------------------------------------------
    def findings(self, path: str) -> "Iterator[Finding]":
        locked = self.always_locked()
        cname = self.cls.name
        for name, f in self.facts.items():
            unlocked_touches = [(n, a) for n, a, under in f.touches if not under]
            if not unlocked_touches:
                continue
            if f.is_private:
                sites = list(self._call_sites(name))
                if not sites:
                    n, attr = unlocked_touches[0]
                    yield Finding(
                        "LCK002",
                        path,
                        n.lineno,
                        f"private method {cname}.{name} touches guarded state "
                        f"{attr!r} but has no in-class caller; lock discipline "
                        "is unverifiable",
                        n.col_offset,
                    )
                    continue
                if locked.get(name, False):
                    continue  # every caller holds the lock
            for n, attr in unlocked_touches:
                yield Finding(
                    "LCK001",
                    path,
                    n.lineno,
                    f"{cname}.{name} touches guarded state {attr!r} without "
                    f"holding self.{self.lock_attr}",
                    n.col_offset,
                )
        # Bare acquire/release hygiene (LCK006).
        for name, f in self.facts.items():
            if not f.bare_acquires and not f.bare_releases:
                continue
            finally_ids = {
                id(n)
                for t in ast.walk(f.node)
                if isinstance(t, ast.Try)
                for stmt in t.finalbody
                for n in ast.walk(stmt)
            }
            for call in f.bare_releases:
                if id(call) not in finally_ids:
                    yield Finding(
                        "LCK006",
                        path,
                        call.lineno,
                        f"{cname}.{name} releases self.{self.lock_attr} outside "
                        "a finally block — an exception before the release "
                        "leaks the lock (use `with self."
                        f"{self.lock_attr}:` or try/finally)",
                        call.col_offset,
                    )
            if f.bare_acquires and not f.bare_releases:
                for call in f.bare_acquires:
                    yield Finding(
                        "LCK006",
                        path,
                        call.lineno,
                        f"{cname}.{name} acquires self.{self.lock_attr} with a "
                        "bare .acquire() and never releases it in this method",
                        call.col_offset,
                    )
        # Non-reentrant self-deadlock: locked context calls a lock-taker.
        for caller, f in self.facts.items():
            for node, callee, under in f.calls:
                context_locked = under or (f.is_private and locked.get(caller, False))
                if context_locked and self.facts[callee].acquires_lock:
                    yield Finding(
                        "LCK003",
                        path,
                        node.lineno,
                        f"{cname}.{caller} calls {callee}() while holding "
                        f"self.{self.lock_attr}, and {callee}() re-acquires it "
                        "(threading.Lock is non-reentrant: deadlock)",
                        node.col_offset,
                    )


def find_lock_classes(tree: ast.Module) -> "list[tuple[ast.ClassDef, str]]":
    """All (class, lock attribute) pairs that opt into lock discipline."""
    out: list[tuple[ast.ClassDef, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        init = next(
            (s for s in node.body if isinstance(s, ast.FunctionDef) and s.name == "__init__"),
            None,
        )
        lock_attr = _detect_lock_attr(init)
        if lock_attr is not None:
            out.append((node, lock_attr))
    return out


def check_lock_discipline_module(module: ModuleInfo) -> "list[Finding]":
    """Check every lock-owning class in one parsed module."""
    findings: list[Finding] = []
    for cls, lock_attr in find_lock_classes(module.tree):
        findings.extend(_ClassAnalysis(cls, lock_attr).findings(module.path))
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return filter_suppressed(findings, module.lines)


def check_lock_discipline(
    root: "str | Path", paths: "Sequence[str | Path] | None" = None
) -> "list[Finding]":
    """Run the lock-discipline pillar over a source tree."""
    findings: list[Finding] = []
    targets = [Path(p) for p in paths] if paths is not None else list(iter_python_files(root))
    for path in targets:
        try:
            module = load_module(path, root=root)
        except SyntaxError:
            continue  # the lint pillar reports PAR001 for this file
        findings.extend(check_lock_discipline_module(module))
    return findings
