"""Span record schema shared by every producer and exporter.

One *span* is a named, timed interval — ``{name, cat, ts, dur, tid,
domain, args}`` — the common currency of the observability subsystem:

* the threaded trainer and the hot-path hooks emit spans on the
  **wall** clock (``time.perf_counter``, seconds);
* the event-driven simulator emits spans on its **virtual** clock
  (the modelled wire/compute time of ``repro.sim``);
* exporters (Chrome trace, flame summary) consume both, keeping the two
  clock domains on separate process lanes so they never interleave.

Records are plain dicts so they serialise to JSONL without conversion;
:func:`validate_record` is the single source of truth for the schema and
is what ``python -m repro.obs convert`` (and the CI trace-smoke job)
enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

__all__ = [
    "DOMAINS",
    "RECORD_TYPES",
    "SPAN_KEYS",
    "Span",
    "relabel_records",
    "span_record",
    "validate_record",
    "validate_records",
]

#: clock domains a span may be stamped in
DOMAINS = ("wall", "virtual")

#: record types a ``repro.obs`` JSONL stream may contain
#: ("step" = per-update training telemetry, the RunLogger lineage)
RECORD_TYPES = ("meta", "span", "metric", "step")

#: required keys of a ``type == "span"`` record
SPAN_KEYS = ("name", "cat", "ts", "dur", "tid", "domain")


@dataclass(frozen=True)
class Span:
    """Typed view of one span record (exporters mostly use raw dicts)."""

    name: str
    cat: str
    ts: float  #: start time in seconds (domain clock)
    dur: float  #: duration in seconds
    tid: str  #: logical thread/lane (thread name, ``worker-3``, ``server``)
    domain: str = "wall"
    args: "Mapping[str, Any]" = field(default_factory=dict)

    @staticmethod
    def from_record(record: "Mapping[str, Any]") -> "Span":
        return Span(
            name=record["name"],
            cat=record["cat"],
            ts=float(record["ts"]),
            dur=float(record["dur"]),
            tid=str(record["tid"]),
            domain=record.get("domain", "wall"),
            args=record.get("args", {}),
        )


def span_record(
    name: str,
    ts: float,
    dur: float,
    tid: str,
    cat: str = "default",
    domain: str = "wall",
    args: "Mapping[str, Any] | None" = None,
    proc: "str | None" = None,
) -> "dict[str, Any]":
    """Build one schema-conformant span record.

    ``proc`` labels the logical producer process (``worker-3``) for spans
    shipped across a process boundary; in-process producers omit it.
    """
    rec: dict[str, Any] = {
        "type": "span",
        "name": name,
        "cat": cat,
        "ts": float(ts),
        "dur": float(dur),
        "tid": str(tid),
        "domain": domain,
    }
    if proc is not None:
        rec["proc"] = str(proc)
    if args:
        rec["args"] = dict(args)
    return rec


def relabel_records(
    records: "Iterable[Mapping[str, Any]]", proc: str
) -> "list[dict[str, Any]]":
    """Stamp records shipped from another process with their origin lane.

    Used by the process backend when merging a worker child's telemetry
    into the parent tracer: every span gains ``proc`` (a distinct Chrome
    process lane) and its ``tid`` is prefixed so ``worker-0:MainThread``
    and ``worker-1:MainThread`` never collide in flame summaries.
    """
    out: list[dict[str, Any]] = []
    for record in records:
        rec = dict(record)
        if rec.get("type") == "span":
            rec["proc"] = proc
            tid = str(rec.get("tid", ""))
            if not tid.startswith(f"{proc}:"):
                rec["tid"] = f"{proc}:{tid}"
        out.append(rec)
    return out


def validate_record(record: "Mapping[str, Any]", index: int = 0) -> "list[str]":
    """Schema violations of one record (empty list ⇒ valid)."""
    errors: list[str] = []
    rtype = record.get("type")
    if rtype not in RECORD_TYPES:
        errors.append(f"record {index}: unknown type {rtype!r}")
        return errors
    if rtype == "span":
        for key in SPAN_KEYS:
            if key not in record:
                errors.append(f"record {index}: span missing key {key!r}")
        for key in ("ts", "dur"):
            value = record.get(key)
            if key in record and not isinstance(value, (int, float)):
                errors.append(f"record {index}: span {key!r} must be numeric, got {value!r}")
        if isinstance(record.get("dur"), (int, float)) and record["dur"] < 0:
            errors.append(f"record {index}: span dur must be >= 0, got {record['dur']}")
        if "domain" in record and record["domain"] not in DOMAINS:
            errors.append(f"record {index}: unknown domain {record['domain']!r}")
        if "proc" in record and not isinstance(record["proc"], str):
            errors.append(f"record {index}: span proc must be a string")
        if "args" in record and not isinstance(record["args"], dict):
            errors.append(f"record {index}: span args must be a mapping")
    elif rtype == "metric":
        for key in ("kind", "name"):
            if key not in record:
                errors.append(f"record {index}: metric missing key {key!r}")
    return errors


def validate_records(records: "Iterable[Mapping[str, Any]]") -> "list[str]":
    """Schema violations across a whole record stream."""
    errors: list[str] = []
    for i, record in enumerate(records):
        errors.extend(validate_record(record, i))
    return errors
