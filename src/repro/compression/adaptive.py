"""Adaptive (sampled) threshold selection.

The paper fixes Top-1% but notes "some more advanced threshold selection
methods can be used" (§4.1).  An exact per-layer top-k costs an
``argpartition`` over the full layer every iteration; production systems
(DGC's reference implementation among them) estimate the threshold from a
*random subsample* instead.  :class:`AdaptiveThresholdSparsifier` does
that, and additionally smooths the estimate across iterations with an
exponential moving average — gradient-magnitude distributions drift slowly,
so the smoothed sampled threshold tracks the exact one at a fraction of
the cost.

Trade-off vs exact top-k: the per-iteration selected count fluctuates
around the target (sampling noise) instead of matching exactly.
"""

from __future__ import annotations

import numpy as np

from .base import Sparsifier
from .topk import topk_threshold

__all__ = ["AdaptiveThresholdSparsifier"]


class AdaptiveThresholdSparsifier(Sparsifier):
    """Sampled-threshold selector targeting ``ratio`` density per layer.

    Each call draws ``sample_size`` random entries of the layer, computes
    the exact top-``ratio`` threshold *of the sample*, and blends it into a
    tracked per-layer threshold: ``thr ← (1 − gain)·thr + gain·thr_sample``.
    The mask is then a single vectorised comparison over the full layer.
    """

    def __init__(
        self,
        ratio: float,
        gain: float = 0.3,
        sample_size: int = 256,
        min_sparse_size: int = 256,
        seed: int = 0,
    ) -> None:
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        if not 0.0 < gain <= 1.0:
            raise ValueError(f"gain must be in (0, 1], got {gain}")
        if sample_size < 16:
            raise ValueError("sample_size must be >= 16")
        self.ratio = ratio
        self.gain = gain
        self.sample_size = sample_size
        self.min_sparse_size = min_sparse_size
        self._rng = np.random.default_rng(seed)
        self._thresholds: dict[tuple[int, ...], float] = {}

    def _sample_threshold(self, flat: np.ndarray) -> float:
        n = flat.size
        if n <= self.sample_size:
            return topk_threshold(flat, self.ratio)
        idx = self._rng.integers(0, n, size=self.sample_size)
        return topk_threshold(flat[idx], self.ratio)

    def mask(self, arr: np.ndarray) -> np.ndarray:
        if arr.size < self.min_sparse_size or self.ratio >= 1.0:
            return np.ones(arr.shape, dtype=bool)
        flat = arr.reshape(-1)
        estimate = self._sample_threshold(flat)
        prev = self._thresholds.get(arr.shape)
        thr = estimate if prev is None else (1 - self.gain) * prev + self.gain * estimate
        self._thresholds[arr.shape] = thr

        mask = np.abs(arr) > thr
        if not mask.any():
            # Sampling overshoot on a heavy-tailed layer: keep at least the
            # single largest entry so progress is never stalled.
            mask = np.zeros(arr.shape, dtype=bool)
            mask.reshape(-1)[int(np.abs(flat).argmax())] = True
        return mask

    def __repr__(self) -> str:
        return (
            f"AdaptiveThresholdSparsifier(ratio={self.ratio}, gain={self.gain}, "
            f"sample_size={self.sample_size})"
        )
