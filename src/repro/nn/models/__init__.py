"""Reference model zoo used by the experiments."""

from .mlp import MLP
from .cnn import SimpleCNN
from .resnet import BasicBlock, MicroResNet, micro_resnet18, micro_resnet_imagenet
from .vgg import SmallVGG

__all__ = [
    "MLP",
    "SimpleCNN",
    "SmallVGG",
    "BasicBlock",
    "MicroResNet",
    "micro_resnet18",
    "micro_resnet_imagenet",
]
