"""Dynamic race harness: CheckedLock, GuardedProxy, instrumented trainers."""

from __future__ import annotations

import importlib.util
import threading
from pathlib import Path

from repro.analysis.race import (
    SERVER_GUARDED_ATTRS,
    CheckedLock,
    GuardedProxy,
    RaceMonitor,
    instrument_server,
)
from repro.core import Hyper
from repro.ps import ThreadedTrainer

FIXTURES = Path(__file__).parent / "fixtures"

HYPER = Hyper(lr=0.1, momentum=0.7, ratio=0.1, min_sparse_size=0)


def load_racy_server_class():
    spec = importlib.util.spec_from_file_location("racy_server", FIXTURES / "racy_server.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod.RacyParameterServer


def make_trainer(dataset, model_factory, workers=4, iters=50):
    return ThreadedTrainer(
        "dgs",
        model_factory,
        dataset,
        num_workers=workers,
        batch_size=16,
        iterations_per_worker=iters,
        hyper=HYPER,
        seed=0,
    )


class TestCheckedLock:
    def test_ownership_tracking(self):
        lock = CheckedLock()
        assert not lock.held_by_current_thread()
        with lock:
            assert lock.held_by_current_thread()
            assert lock.locked()
        assert not lock.held_by_current_thread()
        assert lock.acquisitions == 1

    def test_other_threads_do_not_appear_to_hold_it(self):
        lock = CheckedLock()
        seen = {}
        with lock:
            t = threading.Thread(target=lambda: seen.update(held=lock.held_by_current_thread()))
            t.start()
            t.join()
        assert seen == {"held": False}


class TestGuardedProxy:
    def test_unguarded_access_recorded_only_when_concurrent(self):
        lock, monitor = CheckedLock(), RaceMonitor()
        proxy = GuardedProxy({"n": 0}, lock, monitor, "state")

        # single-threaded: exempt
        proxy.keys()
        assert monitor.violations == []

        # with a second live thread: recorded
        stop = threading.Event()
        t = threading.Thread(target=stop.wait)
        t.start()
        try:
            proxy.keys()
            assert len(monitor.violations) == 1
            assert monitor.violations[0].access == "state.keys"
            with lock:
                proxy.values()
            assert len(monitor.violations) == 1
        finally:
            stop.set()
            t.join()

    def test_pause_resume(self):
        lock, monitor = CheckedLock(), RaceMonitor()
        proxy = GuardedProxy({"n": 0}, lock, monitor, "state")
        stop = threading.Event()
        t = threading.Thread(target=stop.wait)
        t.start()
        try:
            monitor.pause()
            proxy.keys()
            assert monitor.violations == []
            monitor.resume()
            proxy.keys()
            assert len(monitor.violations) == 1
        finally:
            stop.set()
            t.join()


class TestInstrumentedTrainer:
    def test_stock_server_has_zero_unguarded_accesses(self, tiny_dataset, tiny_model_factory):
        trainer = make_trainer(tiny_dataset, tiny_model_factory, workers=4, iters=25)
        monitor = instrument_server(trainer.server)
        result = trainer.run()
        assert monitor.violations == [], monitor.report()
        assert result.server_timestamp == 4 * 25  # training itself still works
        lock = trainer.server._lock
        assert isinstance(lock, CheckedLock) and lock.acquisitions > 0

    def test_racy_server_caught_within_200_steps(self, tiny_dataset, tiny_model_factory):
        trainer = make_trainer(tiny_dataset, tiny_model_factory, workers=4, iters=50)
        trainer.server.__class__ = load_racy_server_class()
        monitor = instrument_server(trainer.server)
        trainer.run()  # 4 × 50 = 200 server steps
        assert monitor.violations, "harness missed the deliberately racy server"
        touched = {v.attr for v in monitor.violations}
        assert "staleness_meter" in touched

    def test_concurrent_metadata_readers_see_no_races(self, tiny_dataset, tiny_model_factory):
        # Regression: ParameterServer.timestamp / server_state_bytes used to
        # read tracker state without the lock; hammer them from a side
        # thread during training and require a clean report.
        trainer = make_trainer(tiny_dataset, tiny_model_factory, workers=3, iters=20)
        monitor = instrument_server(trainer.server)
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                trainer.server.timestamp
                trainer.server.server_state_bytes()

        t = threading.Thread(target=reader, name="metadata-reader")
        t.start()
        try:
            trainer.run()
        finally:
            stop.set()
            t.join()
        # Before the fix the timestamp property read tracker.t unlocked and
        # the reader thread would show up here.  (MainThread's post-join
        # result reads are excluded: they are only flagged because this
        # test keeps an extra thread alive through them.)
        reader_violations = [v for v in monitor.violations if v.thread == "metadata-reader"]
        assert reader_violations == [], monitor.report()


def test_default_guarded_attrs_exist_on_server(tiny_dataset, tiny_model_factory):
    trainer = make_trainer(tiny_dataset, tiny_model_factory, workers=1, iters=1)
    for attr in SERVER_GUARDED_ATTRS:
        assert hasattr(trainer.server, attr)
