"""Ablation — sparsity ratio sweep for DGS."""

from repro.harness.experiments import ablation_ratio
from repro.harness.config import is_fast_mode


def test_ablation_ratio(run_experiment):
    report = run_experiment(ablation_ratio, "ablation_ratio")
    if is_fast_mode():
        return  # smoke pass: shape assertions hold at full scale only
    ratios = [float(r[0].rstrip("%")) / 100 for r in report.rows]
    ups = [float(r[2].rstrip("x")) for r in report.rows]
    # Upload compression grows as R shrinks.
    assert ups == sorted(ups, reverse=True)
    accs = [float(r[1].rstrip("%")) for r in report.rows]
    # All operating points still train (≥ 70% on the micro workload).
    assert min(accs) > 70.0
