"""Command-line interface: regenerate any paper table/figure.

Usage::

    python -m repro list                      # show available experiments
    python -m repro run table2 [--fast]       # regenerate Table 2
    python -m repro run fig6 --out report.md  # save markdown
    python -m repro run all --fast            # everything (smoke scale)
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import time

from .harness import experiments as E

EXPERIMENTS = {
    "table2": (E.table2_accuracy, "Table 2 — accuracy, 5 methods × 2 datasets"),
    "table3": (E.table3_scaling, "Table 3 — CIFAR-10 scaling 1→32 workers"),
    "table4": (E.table4_imagenet_scaling, "Table 4 — ImageNet 4/16 workers"),
    "table5": (E.table5_techniques, "Table 5 — techniques matrix"),
    "fig2": (E.fig2_cifar_curves, "Figure 2 — CIFAR-10 learning curves"),
    "fig3": (E.fig3_imagenet_curves, "Figure 3 — ImageNet learning curves"),
    "fig4": (E.fig4_imagenet16_curves, "Figure 4 — ImageNet 16-worker curves"),
    "fig5": (E.fig5_low_bandwidth, "Figure 5 — loss vs wall-clock at 1 Gbps"),
    "fig6": (E.fig6_speedup, "Figure 6 — speedup vs workers"),
    "memory": (E.memory_usage, "§5.6.2 — memory accounting"),
    "ablation-momentum": (E.ablation_momentum, "§5.4 — momentum sweep"),
    "ablation-secondary": (E.ablation_secondary, "secondary compression on/off"),
    "ablation-ratio": (E.ablation_ratio, "sparsity ratio sweep"),
    "ablation-samomentum": (E.ablation_samomentum, "§5.7 — technique decomposition"),
    "ablation-combination": (E.ablation_combination, "§6 — DGS + other compressors"),
    "ablation-sync-async": (E.ablation_sync_async, "§1/§6 — SSGD barrier vs async"),
    "ablation-staleness": (E.ablation_staleness, "gap-aware damping (paper ref. [4])"),
    "ablation-bandwidth": (E.ablation_bandwidth, "bandwidth crossover of the DGS advantage"),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_p = sub.add_parser("run", help="run one experiment (or 'all')")
    run_p.add_argument("experiment", choices=[*EXPERIMENTS, "all"])
    run_p.add_argument("--fast", action="store_true", help="quarter-scale smoke run")
    run_p.add_argument("--out", help="also write the markdown report to this file")
    run_p.add_argument(
        "--sanitize",
        action="store_true",
        help="run under the numeric sanitizer: fail fast on NaN/Inf or dtype "
        "drift in autograd ops, optimizer steps and compression codecs",
    )
    run_p.add_argument(
        "--trace",
        metavar="PATH",
        help="trace the run with repro.obs (hot-path profiling on): write "
        "Chrome trace JSON, or raw records if PATH ends in .jsonl, and "
        "print the per-phase summary to stderr",
    )
    run_p.add_argument(
        "--backend",
        help="execution backend for the distributed runs (threaded | process "
        "| socket | simulated | sync); default: the simulated virtual "
        "cluster.  Wall-clock backends ignore the experiments' bandwidth "
        "settings",
    )
    run_p.add_argument(
        "--checkpoint-every",
        type=int,
        metavar="N",
        help="write a server checkpoint every N applied updates (threaded "
        "and socket backends); requires --checkpoint",
    )
    run_p.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="server checkpoint file (repro.ps.checkpoint flat-buffer "
        "format) written by --checkpoint-every",
    )
    run_p.add_argument(
        "--restore",
        metavar="PATH",
        help="restore server state from this checkpoint before training and "
        "fast-forward each worker's data stream by its recorded update count",
    )
    run_p.add_argument(
        "--run-dir",
        metavar="DIR",
        help="write a run manifest under DIR/<run_id>/ (manifest.json + "
        "metrics.jsonl, plus trace.json when --trace is active); inspect "
        "with 'python -m repro.obs report|compare|check'",
    )
    args = parser.parse_args(argv)

    if args.command == "list":
        for name, (_, desc) in EXPERIMENTS.items():
            print(f"{name:22s} {desc}")
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if args.sanitize:
        from .analysis.sanitize import sanitize
    tracer = None
    obs_scope = contextlib.ExitStack()
    if getattr(args, "backend", None):
        from .exec import use_backend

        try:
            obs_scope.enter_context(use_backend(args.backend))
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
    if args.checkpoint_every is not None and not args.checkpoint:
        print("error: --checkpoint-every requires --checkpoint", file=sys.stderr)
        return 2
    if args.checkpoint_every is not None or args.restore:
        from .exec import use_config_overrides

        overrides: dict[str, object] = {}
        if args.checkpoint_every is not None:
            overrides["checkpoint_every"] = args.checkpoint_every
            overrides["checkpoint_path"] = args.checkpoint
        if args.restore:
            overrides["restore_from"] = args.restore
        obs_scope.enter_context(use_config_overrides(**overrides))
    if args.trace:
        from .obs import Tracer, profile_hot_paths, use_tracer

        tracer = Tracer(meta={"experiments": " ".join(names), "fast": bool(args.fast)})
        obs_scope.enter_context(use_tracer(tracer))
        obs_scope.enter_context(profile_hot_paths())
    collected = []
    if args.run_dir:
        from .exec import collect_results

        collected = obs_scope.enter_context(collect_results())
    reports = []
    wall_t0 = time.perf_counter()
    with obs_scope:
        for name in names:
            module, desc = EXPERIMENTS[name]
            print(f"== {desc} ==", file=sys.stderr)
            t0 = time.perf_counter()
            guard = sanitize() if args.sanitize else contextlib.nullcontext()
            with guard:
                report = module.run(fast=args.fast)
            elapsed = time.perf_counter() - t0
            print(report.render())
            print(f"[{name}: {elapsed:.1f}s]\n", file=sys.stderr)
            reports.append(report)
    wall_elapsed = time.perf_counter() - wall_t0

    if tracer is not None:
        from .obs import render_summary, write_chrome_trace

        records = [{"type": "meta", **tracer.meta}, *tracer.records()]
        if str(args.trace).endswith(".jsonl"):
            tracer.dump_jsonl(args.trace)
        else:
            write_chrome_trace(args.trace, records)
        print(render_summary(records), file=sys.stderr)
        print(f"wrote trace to {args.trace}", file=sys.stderr)

    if args.run_dir:
        from .obs import write_run_dir

        if not collected:
            print("no distributed runs collected; skipping --run-dir", file=sys.stderr)
        else:
            # The manifest's headline result is the *last* distributed run
            # (experiments sweep many configs; the last is the full-scale
            # one); every collected run is summarised in run_configs.
            last_config, last_result = collected[-1]
            run_dir = write_run_dir(
                args.run_dir,
                last_result,
                config=last_config.describe(),
                records=tracer.records() if tracer is not None else None,
                extra_meta={
                    "experiments": names,
                    "fast": bool(args.fast),
                    "cli_wall_s": wall_elapsed,
                    "num_runs": len(collected),
                    "run_configs": [cfg.describe() for cfg, _ in collected],
                },
            )
            print(
                f"wrote run manifest to {run_dir} ({len(collected)} distributed runs)",
                file=sys.stderr,
            )

    if args.out:
        with open(args.out, "w") as fh:
            fh.write("\n\n".join(r.markdown() for r in reports) + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
