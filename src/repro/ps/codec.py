"""Binary wire codec — the paper's ``encode()`` / ``decode()`` as real bytes.

The simulator accounts bytes analytically; this codec *produces* them, so
the threaded trainer (and any real transport) ships actual packed buffers:

* little-endian struct headers per message and per layer;
* float32 values, uint32 flat indices (COO), 2-bit packed ternary signs;
* layer names interned once per message (length-prefixed UTF-8).

Encoded sizes match the analytic accounting of ``repro.compression.coding``
up to the name table (which the analytic model folds into the fixed
per-layer header) — asserted by tests.

Format (version 1)::

    message  := magic u16 | version u8 | kind u8 | worker u32 | meta i64 |
                nlayers u16 | layer*
    layer    := name_len u16 | name bytes | tag u8 | body
    tag 0 (dense)   : ndim u8 | dims u32* | float32 data
    tag 1 (coo)     : ndim u8 | dims u32* | nnz u32 | uint32 idx* | float32 val*
    tag 2 (ternary) : ndim u8 | dims u32* | nnz u32 | scale f32 |
                      uint32 idx* | packed 2-bit signs
    tag 3 (bitmap)  : ndim u8 | dims u32* | nnz u32 | bitmap | float32 val*
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from typing import Mapping

import numpy as np

from ..compression.coding import BitmapTensor, QuantizedSparseTensor, SparseTensor
from .messages import DiffMessage, GradientMessage, ModelMessage

__all__ = ["encode_message", "decode_message", "MAGIC"]

MAGIC = 0xD65  # "DGS"
_VERSION = 1
_KINDS = {GradientMessage: 0, DiffMessage: 1, ModelMessage: 2}
_KIND_NAMES = {0: "gradient", 1: "diff", 2: "model"}

_HEADER = struct.Struct("<HBBIq H")
_LAYER_HEAD = struct.Struct("<HB")  # name_len, tag  (name sits between)


def _pack_dims(shape: tuple[int, ...]) -> bytes:
    return struct.pack("<B", len(shape)) + struct.pack(f"<{len(shape)}I", *shape)


def _unpack_dims(buf: memoryview, off: int) -> tuple[tuple[int, ...], int]:
    (ndim,) = struct.unpack_from("<B", buf, off)
    off += 1
    dims = struct.unpack_from(f"<{ndim}I", buf, off)
    off += 4 * ndim
    return tuple(dims), off


def _pack_signs(signs: np.ndarray) -> bytes:
    """Pack int8 {-1,0,1} into 2 bits each (00=0, 01=+1, 10=−1)."""
    codes = np.where(signs > 0, 1, np.where(signs < 0, 2, 0)).astype(np.uint8)
    pad = (-len(codes)) % 4
    if pad:
        codes = np.concatenate([codes, np.zeros(pad, dtype=np.uint8)])
    quads = codes.reshape(-1, 4)
    packed = quads[:, 0] | (quads[:, 1] << 2) | (quads[:, 2] << 4) | (quads[:, 3] << 6)
    return packed.tobytes()


def _unpack_signs(raw: bytes, nnz: int) -> np.ndarray:
    packed = np.frombuffer(raw, dtype=np.uint8)
    codes = np.empty(len(packed) * 4, dtype=np.uint8)
    codes[0::4] = packed & 3
    codes[1::4] = (packed >> 2) & 3
    codes[2::4] = (packed >> 4) & 3
    codes[3::4] = (packed >> 6) & 3
    codes = codes[:nnz]
    return np.where(codes == 1, 1, np.where(codes == 2, -1, 0)).astype(np.int8)


def _encode_layer(name: str, layer) -> bytes:
    name_b = name.encode("utf-8")
    if isinstance(layer, SparseTensor):
        body = (
            _pack_dims(layer.shape)
            + struct.pack("<I", layer.nnz)
            + layer.indices.astype("<u4").tobytes()
            + layer.values.astype("<f4").tobytes()
        )
        tag = 1
    elif isinstance(layer, QuantizedSparseTensor):
        body = (
            _pack_dims(layer.shape)
            + struct.pack("<If", layer.nnz, layer.scale)
            + layer.indices.astype("<u4").tobytes()
            + _pack_signs(layer.signs)
        )
        tag = 2
    elif isinstance(layer, BitmapTensor):
        body = (
            _pack_dims(layer.shape)
            + struct.pack("<I", layer.nnz)
            + layer.bitmap.tobytes()
            + layer.values.astype("<f4").tobytes()
        )
        tag = 3
    elif isinstance(layer, np.ndarray):
        body = _pack_dims(layer.shape) + layer.astype("<f4").tobytes()
        tag = 0
    else:  # other payloads with to_dense (DenseTensor, TernaryTensor): ship f32
        dense = layer.to_dense()
        body = _pack_dims(dense.shape) + dense.astype("<f4").tobytes()
        tag = 0
    return _LAYER_HEAD.pack(len(name_b), tag) + name_b + body


def _decode_layer(buf: memoryview, off: int):
    name_len, tag = _LAYER_HEAD.unpack_from(buf, off)
    off += _LAYER_HEAD.size
    name = bytes(buf[off : off + name_len]).decode("utf-8")
    off += name_len
    shape, off = _unpack_dims(buf, off)
    n = int(np.prod(shape)) if shape else 1
    if tag == 0:
        data = np.frombuffer(buf, dtype="<f4", count=n, offset=off).astype(np.float64)
        off += 4 * n
        return name, data.reshape(shape), off
    if tag == 1:
        (nnz,) = struct.unpack_from("<I", buf, off)
        off += 4
        idx = np.frombuffer(buf, dtype="<u4", count=nnz, offset=off).astype(np.int64)
        off += 4 * nnz
        vals = np.frombuffer(buf, dtype="<f4", count=nnz, offset=off).astype(np.float64)
        off += 4 * nnz
        return name, SparseTensor(idx, vals, shape), off
    if tag == 2:
        nnz, scale = struct.unpack_from("<If", buf, off)
        off += 8
        idx = np.frombuffer(buf, dtype="<u4", count=nnz, offset=off).astype(np.int64)
        off += 4 * nnz
        nbytes = (2 * nnz + 7) // 8
        signs = _unpack_signs(bytes(buf[off : off + nbytes]), nnz)
        off += nbytes
        return name, QuantizedSparseTensor(idx, signs, float(scale), shape), off
    if tag == 3:
        (nnz,) = struct.unpack_from("<I", buf, off)
        off += 4
        bm_len = (n + 7) // 8
        bitmap = np.frombuffer(buf, dtype=np.uint8, count=bm_len, offset=off).copy()
        off += bm_len
        vals = np.frombuffer(buf, dtype="<f4", count=nnz, offset=off).astype(np.float64)
        off += 4 * nnz
        return name, BitmapTensor(bitmap, vals, shape), off
    raise ValueError(f"unknown layer tag {tag}")


def encode_message(msg: "GradientMessage | DiffMessage | ModelMessage") -> bytes:
    """Serialise a PS message to its wire representation."""
    kind = _KINDS.get(type(msg))
    if kind is None:
        raise TypeError(f"cannot encode {type(msg).__name__}")
    meta = msg.local_iteration if isinstance(msg, GradientMessage) else msg.server_timestamp
    parts = [
        _HEADER.pack(MAGIC, _VERSION, kind, msg.worker_id, meta, len(msg.payload))
    ]
    for name, layer in msg.payload.items():
        parts.append(_encode_layer(name, layer))
    return b"".join(parts)


def decode_message(raw: "bytes | memoryview"):
    """Inverse of :func:`encode_message` (values come back as float32)."""
    buf = memoryview(raw)
    magic, version, kind, worker, meta, nlayers = _HEADER.unpack_from(buf, 0)
    if magic != MAGIC:
        raise ValueError("bad magic: not a DGS wire message")
    if version != _VERSION:
        raise ValueError(f"unsupported codec version {version}")
    off = _HEADER.size
    payload: "OrderedDict[str, object]" = OrderedDict()
    for _ in range(nlayers):
        name, layer, off = _decode_layer(buf, off)
        payload[name] = layer
    if kind == 0:
        return GradientMessage(worker, payload, meta)
    if kind == 1:
        return DiffMessage(worker, payload, meta, staleness=0)
    return ModelMessage(worker, payload, meta, staleness=0)
