"""Meters."""

import pytest

from repro.metrics import AverageMeter, EMAMeter


class TestAverageMeter:
    def test_avg(self):
        m = AverageMeter()
        m.update(1.0)
        m.update(3.0)
        assert m.avg == 2.0

    def test_weighted(self):
        m = AverageMeter()
        m.update(1.0, n=3)
        m.update(5.0, n=1)
        assert m.avg == pytest.approx(2.0)

    def test_min_max(self):
        m = AverageMeter()
        for v in (3.0, -1.0, 7.0):
            m.update(v)
        assert m.min == -1.0 and m.max == 7.0

    def test_empty_avg_zero(self):
        assert AverageMeter().avg == 0.0

    def test_reset(self):
        m = AverageMeter()
        m.update(5.0)
        m.reset()
        assert m.count == 0 and m.avg == 0.0

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            AverageMeter().update(1.0, n=0)


class TestEMAMeter:
    def test_first_value_passthrough(self):
        m = EMAMeter(0.9)
        assert m.update(10.0) == 10.0

    def test_smoothing(self):
        m = EMAMeter(0.5)
        m.update(0.0)
        assert m.update(10.0) == pytest.approx(5.0)

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            EMAMeter(1.0)
