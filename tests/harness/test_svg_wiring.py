"""Figure experiments attach SVG renderings (fast mode)."""

import pytest

from repro.harness import experiments as E


@pytest.mark.slow
class TestSvgWiring:
    def test_fig5_svg(self):
        rep = E.fig5_low_bandwidth.run(fast=True)
        assert "loss_vs_time" in rep.svgs
        assert rep.svgs["loss_vs_time"].startswith("<svg")

    def test_fig6_svg(self):
        rep = E.fig6_speedup.run(fast=True)
        assert "speedup" in rep.svgs
        assert "</svg>" in rep.svgs["speedup"]
