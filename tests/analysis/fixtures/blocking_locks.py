"""Fixture: channel send/recv reachable while a lock is held (LCK005).

Three findings, exactly:

* ``Publisher.push`` sends on the channel inside ``with self._lock`` —
  direct.
* ``Publisher.pull`` recvs inside the locked region — direct.
* ``Publisher.flush`` calls the private helper ``_drain`` under the lock,
  and the helper sends — one finding *through the call graph*.

``Publisher.safe_push`` snapshots under the lock and sends outside it —
the approved pattern, no finding.
"""

from __future__ import annotations

import threading


class Publisher:
    def __init__(self, channel) -> None:
        self.pending: "list[bytes]" = []
        self.channel = channel
        self._lock = threading.Lock()

    def push(self, item: bytes) -> None:
        with self._lock:
            self.pending.append(item)
            self.channel.send(item)  # blocks while holding the lock

    def pull(self) -> bytes:
        with self._lock:
            item = self.channel.recv()  # blocks while holding the lock
            self.pending.append(item)
            return item

    def flush(self) -> None:
        with self._lock:
            self._drain()

    def _drain(self) -> None:
        for item in self.pending:
            self.channel.send(item)
        self.pending.clear()

    def safe_push(self, item: bytes) -> None:
        with self._lock:
            self.pending.append(item)
            snapshot = list(self.pending)
            channel = self.channel
        for it in snapshot:
            channel.send(it)
