"""The merge gate: the analysis suite must be green over the shipped tree."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import run_analysis
from repro.analysis.__main__ import main

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src" / "repro"
FIXTURES = Path(__file__).parent / "fixtures"


def test_src_tree_has_zero_findings():
    findings = run_analysis(root=SRC)
    assert findings == [], "\n" + "\n".join(f.format() for f in findings)


def test_cli_exits_zero_on_src(capsys):
    assert main([str(SRC)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s) — OK" in out


def test_cli_exits_nonzero_on_bad_fixtures(capsys):
    assert main([str(FIXTURES), "--no-sanitize"]) == 1
    out = capsys.readouterr().out
    assert "FAILED" in out
    # findings are rule-tagged and anchored to the fixture files
    for rule in ("RNG001", "MUT001", "EXC001", "LCK001", "LCK002", "LCK003"):
        assert rule in out, f"expected {rule} in CLI output"
    assert "bad_lint.py" in out and "bad_locks.py" in out


def test_cli_select_filters_rules(capsys):
    assert main([str(FIXTURES), "--no-sanitize", "--select", "LCK001"]) == 1
    out = capsys.readouterr().out
    assert "LCK001" in out
    assert "RNG001" not in out


def test_cli_rejects_nonexistent_path():
    with pytest.raises(SystemExit) as exc:
        main(["does/not/exist", "--no-sanitize"])
    assert exc.value.code == 2


def test_cli_rejects_unknown_select_rule():
    with pytest.raises(SystemExit) as exc:
        main([str(FIXTURES), "--no-sanitize", "--select", "BOGUS999"])
    assert exc.value.code == 2


def test_cli_json_format_is_jsonl(capsys):
    # one JSON object per line so CI/editors can stream-parse findings
    main([str(FIXTURES), "--no-sanitize", "--format", "json"])
    lines = capsys.readouterr().out.strip().splitlines()
    assert lines
    findings = [json.loads(line) for line in lines]
    for f in findings:
        assert {"rule", "path", "line", "col", "message"} <= set(f)
    assert any(f["rule"] == "LCK004" for f in findings)  # lock graph included


def test_cli_human_format_is_default(capsys):
    main([str(FIXTURES), "--no-sanitize"])
    out = capsys.readouterr().out
    assert "finding(s) — FAILED" in out  # summary line, not JSON
    first = out.splitlines()[0]
    with pytest.raises(json.JSONDecodeError):
        json.loads(first)


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("RNG001", "DTY001", "TEN001", "LCK001", "LCK004", "LCK006", "ARC001", "NOQ001", "SAN001"):
        assert rule in out


def test_pillars_can_be_disabled_independently():
    # lint off → only lock findings remain for the fixtures tree
    findings = run_analysis(root=FIXTURES, lint=False, sanitizer=False)
    assert findings and all(f.rule.startswith("LCK") for f in findings)
    findings = run_analysis(root=FIXTURES, locks=False, sanitizer=False)
    assert findings and not any(f.rule.startswith("LCK") for f in findings)
