"""Parameter-server substrate: messages, server, workers, threaded trainer."""

from .codec import decode_message, encode_message
from .messages import DiffMessage, GradientMessage, ModelMessage, payload_dense_nbytes, payload_nbytes
from .process import ProcessResult, ProcessTrainer
from .server import ParameterServer
from .sharded import ParameterShard, ShardedParameterServer
from .threaded import ThreadedResult, ThreadedTrainer
from .worker import WorkerNode

__all__ = [
    "encode_message",
    "decode_message",
    "ProcessTrainer",
    "ProcessResult",
    "GradientMessage",
    "DiffMessage",
    "ModelMessage",
    "payload_nbytes",
    "payload_dense_nbytes",
    "ParameterServer",
    "ParameterShard",
    "ShardedParameterServer",
    "WorkerNode",
    "ThreadedTrainer",
    "ThreadedResult",
]
