"""The unified TrainResult schema: None/NaN semantics and validation."""

import math

from repro.exec import TrainResult, validate_result
from repro.metrics.curves import Curve


def _curve(n=3):
    c = Curve("loss_vs_step")
    for i in range(n):
        c.add(i + 1, 1.0 / (i + 1))
    return c


def _valid(**overrides):
    kwargs = dict(
        method="dgs",
        backend="simulated",
        num_workers=2,
        final_accuracy=0.9,
        final_loss=0.2,
        loss_vs_step=_curve(),
        total_iterations=10,
        samples_processed=160,
        mean_staleness=1.0,
        upload_bytes=1000,
        download_bytes=1000,
    )
    kwargs.update(overrides)
    return TrainResult(**kwargs)


class TestNoneVersusNaN:
    def test_unmeasured_optionals_default_to_none(self):
        r = TrainResult()
        for name in (
            "loss_vs_time",
            "acc_vs_step",
            "makespan_s",
            "clock",
            "upload_dense_bytes",
            "wire_bytes_up",
            "uplink_utilisation",
            "server_state_bytes",
            "rounds",
            "straggler_time_s",
            "trace",
        ):
            assert getattr(r, name) is None, name

    def test_defined_but_unobserved_defaults_to_nan(self):
        r = TrainResult()
        assert math.isnan(r.final_accuracy)
        assert math.isnan(r.mean_staleness)

    def test_throughput_nan_without_makespan(self):
        assert math.isnan(_valid(makespan_s=None).throughput)

    def test_throughput_zero_makespan(self):
        assert _valid(makespan_s=0.0, clock="virtual").throughput == 0.0

    def test_throughput_measured(self):
        r = _valid(makespan_s=4.0, clock="virtual")
        assert r.throughput == r.samples_processed / 4.0

    def test_compression_ratio_nan_without_dense_accounting(self):
        assert math.isnan(_valid().compression_ratio)

    def test_compression_ratio_measured(self):
        r = _valid(upload_dense_bytes=5000, download_dense_bytes=5000)
        assert r.compression_ratio == 10000 / 2000


class TestLegacyAliases:
    def test_server_timestamp_aliases_total_iterations(self):
        assert _valid(total_iterations=42).server_timestamp == 42

    def test_loss_curve_aliases_loss_vs_step(self):
        r = _valid()
        assert r.loss_curve is r.loss_vs_step

    def test_old_result_names_are_this_class(self):
        from repro.ps import ProcessResult, ThreadedResult
        from repro.sim import SimResult, SyncResult

        assert ThreadedResult is TrainResult
        assert ProcessResult is TrainResult
        assert SimResult is TrainResult
        assert SyncResult is TrainResult


class TestValidateResult:
    def test_valid_result_is_clean(self):
        assert validate_result(_valid()) == []

    def test_default_result_reports_core_violations(self):
        problems = validate_result(TrainResult())
        text = "\n".join(problems)
        assert "method is empty" in text
        assert "backend is empty" in text
        assert "num_workers" in text

    def test_nan_accuracy_flagged(self):
        assert any("final_accuracy" in p for p in validate_result(_valid(final_accuracy=float("nan"))))

    def test_missing_byte_accounting_flagged(self):
        assert any("byte accounting" in p for p in validate_result(_valid(download_bytes=0)))

    def test_makespan_requires_clock_domain(self):
        problems = validate_result(_valid(makespan_s=1.0, clock=None))
        assert any("clock domain" in p for p in problems)

    def test_bad_clock_value_flagged(self):
        assert any("clock" in p for p in validate_result(_valid(clock="lamport")))

    def test_claimed_measures_must_be_populated(self):
        problems = validate_result(_valid(), measures=("wire_bytes_up",))
        assert problems == ["backend claims to measure 'wire_bytes_up' but it is None"]

    def test_populated_measures_pass(self):
        r = _valid(makespan_s=1.0, clock="wall", wire_bytes_up=10)
        assert validate_result(r, measures=("makespan_s", "clock", "wire_bytes_up")) == []
