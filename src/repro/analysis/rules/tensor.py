"""TEN001 — ``Tensor.data`` is only mutated inside ``autograd/`` and ``optim/``.

Everything else must go through the blessed ``core.layerops`` helpers
(``assign_parameters``, ``add_payload``, ``copy_payload``).  Ad-hoc writes
to ``.data`` bypass the tape, the sanitizer hooks and any future
device/layout abstraction; concentrating them in two subpackages keeps the
mutation surface auditable.

Detected shapes::

    x.data = ...          x.data += ...        x.data[i] = ...
    np.copyto(x.data, v)  layer.add_into(x.data)
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..linter import LintConfig, ModuleInfo, Rule

__all__ = ["TensorDataMutationRule"]

#: callables whose first argument is mutated in place
_MUTATING_CALLS = {"copyto", "add_into"}


def _is_data_attr(node: ast.expr) -> bool:
    """True for ``<expr>.data`` or ``<expr>.data[...]``."""
    if isinstance(node, ast.Subscript):
        node = node.value
    return isinstance(node, ast.Attribute) and node.attr == "data"


class TensorDataMutationRule(Rule):
    id = "TEN001"
    summary = "Tensor.data mutation only in autograd/ and optim/ (use core.layerops)"

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
        if module.may_mutate_tensor_data(config):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Call):
                fn = node.func
                if (
                    isinstance(fn, ast.Attribute)
                    and fn.attr in _MUTATING_CALLS
                    and node.args
                    and _is_data_attr(node.args[0])
                ):
                    yield self.finding(
                        module,
                        node,
                        f"{fn.attr}(...) writes into a .data buffer outside "
                        "autograd/optim; use core.layerops helpers",
                    )
                continue
            else:
                continue
            for tgt in targets:
                if _is_data_attr(tgt):
                    yield self.finding(
                        module,
                        tgt,
                        "in-place mutation of Tensor.data outside autograd/optim; "
                        "use core.layerops helpers",
                    )
