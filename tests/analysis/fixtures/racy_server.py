"""A deliberately racy ParameterServer for the dynamic harness tests.

``handle`` peeks at the staleness meter and tracker *before* entering the
guarded base implementation — exactly the bug class the
:func:`repro.analysis.race.instrument_server` harness exists to catch.
Loaded via importlib by ``test_race.py``; never imported by product code.
"""

from repro.ps.server import ParameterServer

__all__ = ["RacyParameterServer"]


class RacyParameterServer(ParameterServer):
    def handle(self, msg):
        # BUG (intentional): unguarded reads/writes of lock-protected state.
        stale = self.tracker.staleness(msg.worker_id)
        self.staleness_meter.update(stale)
        return super().handle(msg)
