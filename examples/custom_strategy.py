#!/usr/bin/env python
"""Extending the library: write your own compression strategy.

Implements a *sign-SGD with error feedback* worker strategy from scratch —
not one of the paper's methods — plugs it into the method registry, and
trains it through the unmodified simulator against DGS.  This is the
extension path a downstream researcher would use to prototype a new
compressor on the DGS substrate (dual-way model-difference tracking comes
for free from the server side).

Usage:  python examples/custom_strategy.py [--fast]
"""

import argparse
from collections import OrderedDict

import numpy as np

from repro.compression import TernaryTensor
from repro.core.methods import METHODS, MethodSpec
from repro.core.strategies import WorkerStrategy
from repro.harness import get_workload, run_distributed
from repro.metrics import format_table


class SignSGDStrategy(WorkerStrategy):
    """signSGD with error feedback (Karimireddy et al. style).

    Send ``sign(e + η∇)·scale`` where ``scale`` is the mean magnitude and
    ``e`` accumulates the compression error — 2 bits/element on the wire.
    """

    def __init__(self, shapes):
        super().__init__(shapes)
        self.error = OrderedDict((n, np.zeros(s)) for n, s in self.shapes.items())

    def prepare(self, grads, lr):
        out = OrderedDict()
        for name, g in grads.items():
            e = self.error[name]
            corrected = e + lr * g
            scale = float(np.abs(corrected).mean())
            signs = np.sign(corrected.reshape(-1)).astype(np.int8)
            out[name] = TernaryTensor(signs, scale, corrected.shape)
            # error feedback: keep what the sign code could not express
            e[...] = corrected - (signs.reshape(corrected.shape) * scale)
        return out

    def state_bytes(self):
        return sum(e.nbytes for e in self.error.values())


def register() -> None:
    """Add signsgd to the registry so every trainer/bench can run it."""
    METHODS["signsgd"] = MethodSpec(
        name="signsgd",
        label="signSGD-EF",
        strategy="signsgd",
        downstream="difference",
        sparsification="1-bit signs + error feedback",
        momentum="N",
    )
    # Teach the strategy factory about the new kind.
    from repro.core import extensions

    original = extensions.build_extension_strategy

    def patched(kind, shapes, hyper):
        if kind == "signsgd":
            return SignSGDStrategy(shapes)
        return original(kind, shapes, hyper)

    extensions.build_extension_strategy = patched


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true")
    args = parser.parse_args()
    register()

    workload = get_workload("cifar10")
    rows = []
    for method in ("dgs", "signsgd"):
        r = run_distributed(method, workload, 4, fast=args.fast, seed=0)
        rows.append((
            method,
            f"{100 * r.final_accuracy:.2f}%",
            f"{r.upload_dense_bytes / max(r.upload_bytes, 1):.0f}x",
        ))
    print(format_table(
        ("method", "top-1 acc", "upload compression"),
        rows,
        title="Custom strategy (signSGD + error feedback) vs DGS, 4 workers",
    ))


if __name__ == "__main__":
    main()
