"""Property tests for the binary wire codec: roundtrip over arbitrary payloads."""

from collections import OrderedDict

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays, array_shapes

from repro.compression import BitmapTensor, SparseTensor
from repro.ps import GradientMessage
from repro.ps.codec import decode_message, encode_message

f32_exact = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=32
)


@given(
    arr=arrays(np.float64, array_shapes(max_dims=3, max_side=10), elements=f32_exact),
    worker=st.integers(0, 1000),
    iteration=st.integers(0, 10**6),
)
@settings(max_examples=80, deadline=None)
def test_dense_roundtrip_exact_for_f32_values(arr, worker, iteration):
    """float32-representable values survive the wire bit-exactly."""
    msg = GradientMessage(worker, OrderedDict([("w", arr)]), iteration)
    out = decode_message(encode_message(msg))
    assert out.worker_id == worker and out.local_iteration == iteration
    np.testing.assert_array_equal(out.payload["w"], arr.astype(np.float32).astype(np.float64))


@given(
    data=st.data(),
    n=st.integers(1, 300),
)
@settings(max_examples=80, deadline=None)
def test_sparse_roundtrip(data, n):
    nnz = data.draw(st.integers(0, n))
    idx = np.sort(
        np.array(
            data.draw(
                st.lists(st.integers(0, n - 1), min_size=nnz, max_size=nnz, unique=True)
            ),
            dtype=np.int64,
        )
    )
    vals = np.array(
        data.draw(st.lists(f32_exact, min_size=nnz, max_size=nnz)), dtype=np.float64
    )
    st_tensor = SparseTensor(idx, vals, (n,))
    msg = GradientMessage(0, OrderedDict([("w", st_tensor)]), 0)
    out = decode_message(encode_message(msg)).payload["w"]
    np.testing.assert_array_equal(out.indices, idx)
    np.testing.assert_array_equal(out.values, vals.astype(np.float32).astype(np.float64))


@given(
    data=st.data(),
    n=st.integers(1, 200),
)
@settings(max_examples=60, deadline=None)
def test_bitmap_roundtrip(data, n):
    mask = np.array(data.draw(st.lists(st.booleans(), min_size=n, max_size=n)))
    arr = np.zeros(n)
    arr[mask] = np.array(
        data.draw(st.lists(f32_exact, min_size=int(mask.sum()), max_size=int(mask.sum())))
    )
    bt = BitmapTensor.from_mask(arr, mask)
    msg = GradientMessage(0, OrderedDict([("w", bt)]), 0)
    out = decode_message(encode_message(msg)).payload["w"]
    np.testing.assert_array_equal(
        out.to_dense(), arr.astype(np.float32).astype(np.float64)
    )
