"""Property tests for the reporting layer: renderers never crash and always
produce well-formed output, for arbitrary numeric data."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import Curve, ascii_plot, format_markdown_table, format_table
from repro.metrics.svg import render_svg

finite = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False)
series = st.lists(finite, min_size=1, max_size=40)


def to_curve(ys):
    c = Curve("c")
    for i, y in enumerate(ys):
        c.add(i, y)
    return c


@given(ys=series)
@settings(max_examples=60, deadline=None)
def test_ascii_plot_always_renders(ys):
    out = ascii_plot({"s": to_curve(ys)}, width=40, height=10)
    lines = out.split("\n")
    assert len(lines) >= 12
    assert "legend" in out


@given(ys=series, logy=st.booleans())
@settings(max_examples=60, deadline=None)
def test_svg_always_well_formed(ys, logy):
    out = render_svg({"s": to_curve(ys)}, logy=logy)
    assert out.startswith("<svg")
    assert out.rstrip().endswith("</svg>")
    # balanced text tags
    assert out.count("<text") == out.count("</text>")


@given(
    rows=st.lists(
        st.tuples(st.text(min_size=0, max_size=8).filter(lambda s: "\n" not in s), finite),
        min_size=1,
        max_size=15,
    )
)
@settings(max_examples=60, deadline=None)
def test_tables_render_arbitrary_cells(rows):
    txt = format_table(("name", "value"), rows)
    md = format_markdown_table(("name", "value"), rows)
    assert len(txt.split("\n")) == len(rows) + 2
    assert md.count("\n") == len(rows) + 1
