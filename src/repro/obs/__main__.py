"""Observability CLI.

Usage::

    python -m repro.obs convert run.jsonl out.json   # Chrome trace (validates)
    python -m repro.obs summary run.jsonl            # per-phase time + bytes
    python -m repro.obs summary run.jsonl --prometheus
    python -m repro.obs top run.jsonl -n 15          # self-time hot list
    python -m repro.obs smoke --jsonl trace.jsonl    # tiny traced runs (CI)
    python -m repro.obs report runs/<id>             # one-run manifest summary
    python -m repro.obs compare runs/<a> runs/<b>    # field-by-field deltas
    python -m repro.obs check runs/<id> --max-staleness-p99 8
    python -m repro.obs run-smoke --runs-dir runs    # process run + manifest (CI)

``convert`` validates both the input record stream and the produced
Chrome JSON and exits non-zero on any schema violation — that is the
gate the CI trace-smoke job relies on.  ``check`` evaluates a
:class:`~repro.obs.runs.HealthSpec` against a run manifest and exits
non-zero on any violated SLO — the run-health gate.
"""

from __future__ import annotations

import argparse
import sys

from .export import (
    load_jsonl,
    render_summary,
    render_top,
    to_chrome_trace,
    to_prometheus,
    validate_chrome_trace,
    write_chrome_trace,
)
from .runs import (
    HealthSpec,
    evaluate_health,
    load_manifest,
    render_compare,
    render_report,
)
from .span import validate_records


def _cmd_convert(args: argparse.Namespace) -> int:
    records = load_jsonl(args.input)
    errors = validate_records(records)
    if errors:
        for err in errors:
            print(f"schema violation: {err}", file=sys.stderr)
        return 1
    trace = to_chrome_trace(records)
    errors = validate_chrome_trace(trace)
    if errors:
        for err in errors:
            print(f"chrome-trace violation: {err}", file=sys.stderr)
        return 1
    write_chrome_trace(args.output, records, indent=2 if args.indent else None)
    nspans = sum(1 for r in records if r.get("type") == "span")
    print(f"wrote {args.output}: {nspans} spans, {len(trace['traceEvents'])} events", file=sys.stderr)
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    records = load_jsonl(args.input)
    if args.prometheus:
        print(to_prometheus([r for r in records if r.get("type") == "metric"]), end="")
        return 0
    meta = next((r for r in records if r.get("type") == "meta"), None)
    if meta:
        fields = ", ".join(f"{k}={v}" for k, v in meta.items() if k != "type")
        if fields:
            print(f"run: {fields}\n")
    print(render_summary(records))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    print(render_top(load_jsonl(args.input), n=args.n))
    return 0


def _cmd_smoke(args: argparse.Namespace) -> int:
    """Tiny traced threaded + simulated runs; writes one JSONL stream."""
    from dataclasses import replace

    from ..core.methods import Hyper
    from ..data.synthetic import make_blobs
    from ..exec import RunConfig, train
    from ..nn.models.mlp import MLP
    from ..sim.cluster import ClusterConfig
    from .hooks import profile_hot_paths
    from .metrics import MetricsRegistry
    from .tracer import Tracer, use_tracer

    dataset = make_blobs(n_samples=256, num_classes=4, dim=12, seed=1)
    hyper = Hyper(ratio=0.1, min_sparse_size=0)
    tracer = Tracer(meta={"kind": "trace-smoke", "workers": args.workers})
    registry = MetricsRegistry()

    # Same config through the unified front-end on both clock domains;
    # config.tracer is None, so both runs emit into the ambient tracer.
    config = RunConfig(
        "dgs",
        lambda: MLP(12, (24,), 4, seed=7),
        dataset,
        num_workers=args.workers,
        batch_size=16,
        total_iterations=args.workers * args.iterations,
        hyper=hyper,
        seed=0,
    )
    with use_tracer(tracer), profile_hot_paths():
        t_res = train(config, backend="threaded")
        s_res = train(
            replace(config, cluster=ClusterConfig.with_bandwidth(args.workers, 10, compute_mean_s=0.01)),
            backend="simulated",
        )

    for name, result in (("threaded", t_res), ("sim", s_res)):
        registry.counter("upload_bytes", layer=name).inc(result.upload_bytes)
        registry.counter("download_bytes", layer=name).inc(result.download_bytes)
    n = tracer.dump_jsonl(
        args.jsonl,
        meta={
            "threaded_upload_bytes": t_res.upload_bytes,
            "threaded_download_bytes": t_res.download_bytes,
            "sim_upload_bytes": s_res.upload_bytes,
            "sim_download_bytes": s_res.download_bytes,
        },
        metrics=registry.snapshot(),
    )
    cats = sorted({r.get("cat") for r in tracer.records()})
    print(f"wrote {args.jsonl}: {n} records, categories: {', '.join(cats)}", file=sys.stderr)
    missing = {"autograd", "compression", "server", "worker"} - set(cats)
    if missing:
        print(f"smoke failed: missing span categories {sorted(missing)}", file=sys.stderr)
        return 1
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    print(render_report(load_manifest(args.run_dir)))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    print(render_compare(load_manifest(args.a), load_manifest(args.b)))
    return 0


def _spec_from_args(args: argparse.Namespace) -> HealthSpec:
    if args.spec is not None:
        return HealthSpec.from_file(args.spec)
    return HealthSpec(
        max_staleness_p99=args.max_staleness_p99,
        min_samples_per_sec=args.min_samples_per_sec,
        max_worker_skew_s=args.max_worker_skew_s,
    )


def _cmd_check(args: argparse.Namespace) -> int:
    manifest = load_manifest(args.run_dir)
    spec = _spec_from_args(args)
    violations = evaluate_health(manifest, spec)
    run_id = manifest.get("run_id", args.run_dir)
    if violations:
        for v in violations:
            print(f"health violation [{run_id}] {v}", file=sys.stderr)
        return 1
    print(f"run {run_id}: healthy", file=sys.stderr)
    return 0


def _cmd_run_smoke(args: argparse.Namespace) -> int:
    """Tiny traced run → run dir → health gate (CI).

    With the default ``--backend process`` this exercises the whole
    telemetry pipeline: worker processes ship spans back as
    TelemetryFrames, the parent merges them, the manifest is written and
    checked.  ``--backend socket`` runs the same gate over real TCP
    loopback connections, adding the elastic join/leave handshake to the
    smoke.  ``--shards N`` routes the same run through the sharded
    parameter server, and the smoke then additionally demands one
    ``shard-<i>`` trace lane per shard.  ``--run-id`` is fixed so a
    Makefile can chain ``obs check`` on the resulting directory
    deterministically.
    """
    from ..core.methods import Hyper
    from ..data.synthetic import make_blobs
    from ..exec import RunConfig, train
    from ..nn.models.mlp import MLP
    from .runs import load_manifest as _load, write_run_dir
    from .tracer import Tracer, use_tracer

    dataset = make_blobs(n_samples=256, num_classes=4, dim=12, seed=1)
    tracer = Tracer(
        meta={"kind": "run-smoke", "workers": args.workers, "shards": args.shards}
    )
    config = RunConfig(
        "dgs",
        lambda: MLP(12, (24,), 4, seed=7),
        dataset,
        num_workers=args.workers,
        batch_size=16,
        total_iterations=args.workers * args.iterations,
        hyper=Hyper(ratio=0.1, min_sparse_size=0),
        seed=0,
        num_shards=args.shards,
        tracer=tracer,
    )
    with use_tracer(tracer):
        result = train(config, backend=args.backend)

    run_dir = write_run_dir(
        args.runs_dir,
        result,
        config=config.describe(),
        run_id=args.run_id,
        records=tracer.records(),
    )
    manifest = _load(run_dir)
    num_shards = manifest["result"]["num_shards"]
    spans = [rec for rec in tracer.records() if rec.get("type") == "span"]
    procs = {rec.get("proc") for rec in spans if rec.get("proc")}
    shard_lanes = {
        rec["tid"] for rec in spans if str(rec.get("tid", "")).startswith("shard-")
    }
    print(
        f"wrote {run_dir}: backend={manifest['backend']} "
        f"shards={num_shards} worker lanes={sorted(procs)} "
        f"shard lanes={sorted(shard_lanes)}",
        file=sys.stderr,
    )
    if args.backend in ("process", "socket") and len(procs) < args.workers:
        # threaded workers share the main process, so proc lanes only
        # gate the backends that actually cross a process boundary
        print(
            f"run-smoke failed: expected {args.workers} worker span lanes, got {sorted(procs)}",
            file=sys.stderr,
        )
        return 1
    expected_lanes = (
        {f"shard-{i}" for i in range(num_shards)} if args.shards > 1 else set()
    )
    if shard_lanes != expected_lanes:
        print(
            f"run-smoke failed: expected shard trace lanes {sorted(expected_lanes)}, "
            f"got {sorted(shard_lanes)}",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.obs", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_convert = sub.add_parser("convert", help="JSONL records -> Chrome trace JSON (validating)")
    p_convert.add_argument("input")
    p_convert.add_argument("output")
    p_convert.add_argument("--indent", action="store_true", help="pretty-print the JSON")
    p_convert.set_defaults(fn=_cmd_convert)

    p_summary = sub.add_parser("summary", help="per-phase time + bytes table")
    p_summary.add_argument("input")
    p_summary.add_argument(
        "--prometheus", action="store_true", help="print metric records as Prometheus text"
    )
    p_summary.set_defaults(fn=_cmd_summary)

    p_top = sub.add_parser("top", help="flamegraph-style self-time hot list")
    p_top.add_argument("input")
    p_top.add_argument("-n", type=int, default=20, help="number of rows (default 20)")
    p_top.set_defaults(fn=_cmd_top)

    p_smoke = sub.add_parser("smoke", help="tiny traced threaded+sim runs (CI gate)")
    p_smoke.add_argument("--jsonl", default=".trace-smoke.jsonl", help="output record stream")
    p_smoke.add_argument("--workers", type=int, default=2)
    p_smoke.add_argument("--iterations", type=int, default=4, help="iterations per worker")
    p_smoke.set_defaults(fn=_cmd_smoke)

    p_report = sub.add_parser("report", help="summarise one run manifest")
    p_report.add_argument("run_dir")
    p_report.set_defaults(fn=_cmd_report)

    p_compare = sub.add_parser("compare", help="field-by-field deltas between two runs")
    p_compare.add_argument("a")
    p_compare.add_argument("b")
    p_compare.set_defaults(fn=_cmd_compare)

    p_check = sub.add_parser("check", help="health-gate a run manifest (non-zero on violation)")
    p_check.add_argument("run_dir")
    p_check.add_argument("--spec", help="HealthSpec JSON file (overrides the flag limits)")
    p_check.add_argument("--max-staleness-p99", type=float, default=None)
    p_check.add_argument("--min-samples-per-sec", type=float, default=None)
    p_check.add_argument("--max-worker-skew-s", type=float, default=None)
    p_check.set_defaults(fn=_cmd_check)

    p_run_smoke = sub.add_parser(
        "run-smoke", help="tiny traced process run -> run dir + merged trace (CI gate)"
    )
    p_run_smoke.add_argument("--runs-dir", default="runs", help="parent directory for run dirs")
    p_run_smoke.add_argument("--run-id", default="run-smoke", help="fixed id (deterministic path)")
    p_run_smoke.add_argument("--workers", type=int, default=2)
    p_run_smoke.add_argument("--iterations", type=int, default=4, help="iterations per worker")
    p_run_smoke.add_argument(
        "--shards", type=int, default=1, help="parameter-server shards (1 = single lock)"
    )
    p_run_smoke.add_argument(
        "--backend",
        default="process",
        choices=("process", "threaded", "socket"),
        help="execution backend to smoke (default: process)",
    )
    p_run_smoke.set_defaults(fn=_cmd_run_smoke)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
