"""Cross-checks: registry flags (Table 5) must describe actual strategy behaviour."""

from collections import OrderedDict

import numpy as np
import pytest

from repro.core import Hyper, METHODS
from repro.core.strategies import (
    DGCStrategy,
    DenseStrategy,
    GradientDroppingStrategy,
    SAMomentumStrategy,
)

SHAPES = OrderedDict([("w", (50,))])
HYPER = Hyper(ratio=0.1, momentum=0.7, min_sparse_size=0)
PAPER_METHODS = ("asgd", "gd_async", "dgc_async", "dgs")


def fresh_strategy(name):
    return METHODS[name].make_strategy(SHAPES, HYPER)


class TestFlagsMatchBehaviour:
    @pytest.mark.parametrize("name", PAPER_METHODS)
    def test_residual_accumulation_flag(self, name):
        """'Remaining Gradients Accumulation: Y' ⇔ the strategy keeps a
        residual that carries unsent *raw update* mass between iterations
        (GD's r, DGC's v) — as opposed to SAMomentum's velocity-only u."""
        spec = METHODS[name]
        strat = fresh_strategy(name)
        has_residual = isinstance(strat, (GradientDroppingStrategy, DGCStrategy))
        assert spec.residual_accumulation == has_residual

    @pytest.mark.parametrize("name", PAPER_METHODS)
    def test_momentum_flag(self, name):
        spec = METHODS[name]
        strat = fresh_strategy(name)
        if spec.momentum == "N":
            assert isinstance(strat, (DenseStrategy, GradientDroppingStrategy))
        elif spec.momentum == "SAMomentum":
            assert isinstance(strat, SAMomentumStrategy)
        else:
            assert isinstance(strat, DGCStrategy)

    @pytest.mark.parametrize("name", PAPER_METHODS)
    def test_sparsification_flag(self, name):
        """'N' methods send dense; dual-way methods send sparse + use the
        difference downstream."""
        spec = METHODS[name]
        rng = np.random.default_rng(0)
        strat = fresh_strategy(name)
        out = strat.prepare(OrderedDict([("w", rng.normal(size=50))]), 0.1)
        if spec.sparsification == "N":
            assert isinstance(out["w"], np.ndarray)
            assert spec.downstream == "model"
        else:
            assert out["w"].nnz < 50
            assert spec.downstream == "difference"

    def test_momentum_correction_only_dgc(self):
        for name in PAPER_METHODS:
            assert METHODS[name].momentum_correction == (name == "dgc_async")

    def test_dgs_memory_claim(self):
        """§5.6.2: DGS's worker state (one buffer) < DGC's (two buffers);
        GD's single residual equals DGS's single u."""
        dgs = fresh_strategy("dgs").state_bytes()
        dgc = fresh_strategy("dgc_async").state_bytes()
        gd = fresh_strategy("gd_async").state_bytes()
        asgd = fresh_strategy("asgd").state_bytes()
        assert asgd == 0
        assert dgs == gd == dgc // 2
