"""§5.7 — decomposition: dual-way sparsification vs SAMomentum contributions."""

from repro.harness.experiments import ablation_samomentum
from repro.harness.config import is_fast_mode


def test_ablation_samomentum(run_experiment):
    report = run_experiment(ablation_samomentum, "ablation_samomentum", seeds=(0, 1))
    if is_fast_mode():
        return  # smoke pass: shape assertions hold at full scale only
    accs = {r[0]: r[1] for r in report.rows[:4]}
    dgs = float(accs["DGS"].split("%")[0])
    gd = float(accs["GD-async"].split("%")[0])
    # Shape (paper §5.7): SAMomentum is the dominant contribution —
    # DGS (= GD-async + SAMomentum) beats GD-async.
    assert dgs > gd - 0.25
