"""Fixture: bare ``.acquire()`` / ``.release()`` lock usage (LCK006).

Two findings, exactly:

* ``Tally.add`` releases outside any ``finally`` — an exception between
  acquire and release leaks the lock.
* ``Tally.leak`` acquires and never releases in the method.

``Tally.safe`` uses try/finally correctly — no finding, and the guarded
mutation between acquire and release must NOT be reported as LCK001
(the checker tracks bare-locked regions).
"""

from __future__ import annotations

import threading


class Tally:
    def __init__(self) -> None:
        self.total = 0
        self._lock = threading.Lock()

    def add(self, n: int) -> None:
        self._lock.acquire()
        self.total += n
        self._lock.release()  # not in a finally: leaks on exception

    def leak(self) -> int:
        self._lock.acquire()
        return self.total

    def safe(self, n: int) -> None:
        self._lock.acquire()
        try:
            self.total += n
        finally:
            self._lock.release()
