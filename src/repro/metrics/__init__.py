"""Meters, curves, tables, and ASCII figure rendering."""

from .curves import Curve, CurveSet
from .meters import AverageMeter, EMAMeter
from .plots import ascii_plot
from .runlog import RunLogger, load_runlog
from .svg import render_svg, save_svg
from .tables import format_markdown_table, format_table

__all__ = [
    "AverageMeter",
    "EMAMeter",
    "Curve",
    "CurveSet",
    "ascii_plot",
    "RunLogger",
    "load_runlog",
    "render_svg",
    "save_svg",
    "format_table",
    "format_markdown_table",
]
