"""Per-layer vector helpers."""

import numpy as np
import pytest

from repro.core.layerops import (
    add_scaled,
    assign_parameters,
    clone_layers,
    flatten_layers,
    gradients_of,
    layer_shapes,
    parameters_of,
    total_nbytes,
    total_size,
    zeros_like_layers,
)
from repro.nn import MLP, cross_entropy
from repro.autograd import Tensor


@pytest.fixture
def model():
    return MLP(6, (8,), 3, seed=0)


class TestLayerOps:
    def test_layer_shapes(self, model):
        shapes = layer_shapes(model)
        assert shapes["net.0.weight"] == (8, 6)

    def test_zeros_like(self, model):
        z = zeros_like_layers(layer_shapes(model))
        assert all((arr == 0).all() for arr in z.values())

    def test_parameters_of_copies(self, model):
        params = parameters_of(model)
        params["net.0.weight"][...] = 99.0
        assert not np.allclose(model.net.layers[0].weight.data, 99.0)

    def test_assign_roundtrip(self, model):
        params = parameters_of(model)
        other = MLP(6, (8,), 3, seed=5)
        assign_parameters(other, params)
        np.testing.assert_array_equal(
            other.net.layers[0].weight.data, model.net.layers[0].weight.data
        )

    def test_gradients_of_with_missing(self, model, rng):
        loss = cross_entropy(model(Tensor(rng.normal(size=(4, 6)))), np.array([0, 1, 2, 0]))
        loss.backward()
        grads = gradients_of(model)
        assert set(grads) == set(dict(model.named_parameters()))

    def test_gradients_of_zero_when_no_backward(self, model):
        grads = gradients_of(model)
        assert all((g == 0).all() for g in grads.values())

    def test_add_scaled(self):
        dest = {"a": np.ones(3)}
        add_scaled(dest, {"a": np.ones(3)}, scale=2.0)
        np.testing.assert_allclose(dest["a"], 3.0)

    def test_totals(self, model):
        params = parameters_of(model)
        assert total_size(params) == model.num_parameters()
        assert total_nbytes(params) == model.num_parameters() * 8

    def test_flatten(self):
        flat = flatten_layers({"a": np.ones((2, 2)), "b": np.zeros(3)})
        assert flat.shape == (7,)
        np.testing.assert_allclose(flat, [1, 1, 1, 1, 0, 0, 0])

    def test_flatten_empty(self):
        assert flatten_layers({}).shape == (0,)

    def test_clone_is_deep(self):
        src = {"a": np.ones(2)}
        dst = clone_layers(src)
        dst["a"][0] = 5
        assert src["a"][0] == 1
