"""Ablation — bandwidth crossover: where dual-way sparsification starts to pay.

The paper's Figures 5–6 show the two extremes (10 Gbps ≈ compute-bound,
1 Gbps ≈ communication-bound).  This bench sweeps the bandwidth axis and
reports the throughput advantage of DGS over ASGD at each point, locating
the crossover where the network stops being ASGD's bottleneck.
"""

from __future__ import annotations

from dataclasses import replace

from ...metrics.plots import ascii_plot
from ..config import get_workload, paper_cluster
from ..report import ExperimentReport
from ..runners import run_distributed
from .common import resolve_fast

__all__ = ["run"]

BANDWIDTHS_GBPS = (0.5, 1.0, 2.0, 5.0, 10.0, 25.0)


def run(fast: bool | None = None, seeds: tuple[int, ...] = (0,)) -> ExperimentReport:
    fast = resolve_fast(fast)
    bandwidths = BANDWIDTHS_GBPS[1:4] if fast else BANDWIDTHS_GBPS
    num_workers = 4 if fast else 8
    iters = (10 if fast else 25) * num_workers
    wl = get_workload("cifar10")
    hyper = replace(wl.hyper, ratio=0.01, secondary_ratio=0.01, min_sparse_size=0)
    seed = seeds[0]

    report = ExperimentReport(
        experiment_id="Ablation (bandwidth crossover)",
        title=f"DGS vs ASGD throughput across bandwidths, {num_workers} workers",
        headers=("Bandwidth (Gbps)", "ASGD (samples/s)", "DGS (samples/s)", "DGS advantage"),
    )
    curve = {"ASGD": ([], []), "DGS": ([], [])}
    for gbps in bandwidths:
        throughputs = {}
        for method in ("asgd", "dgs"):
            r = run_distributed(
                method, wl, num_workers,
                hyper=hyper,
                secondary_compression=True if method == "dgs" else None,
                total_iterations=iters,
                cluster=paper_cluster(num_workers, gbps, wl.model_factory(seed)(), seed=seed),
                fast=fast, seed=seed,
            )
            throughputs[method] = r.throughput
            curve[method.upper()][0].append(gbps)
            curve[method.upper()][1].append(r.throughput)
        adv = throughputs["dgs"] / max(throughputs["asgd"], 1e-9)
        report.add_row(f"{gbps:g}", f"{throughputs['asgd']:.0f}", f"{throughputs['dgs']:.0f}", f"{adv:.1f}x")
    report.figures.append(
        ascii_plot(curve, title="throughput vs bandwidth", xlabel="Gbps", ylabel="samples/s")
    )
    report.add_note(
        "Expected shape: DGS's advantage is largest at low bandwidth and decays "
        "toward 1x once ASGD becomes compute-bound (the crossover sits where "
        "dense model transfer time ≈ per-iteration compute)."
    )
    return report
