"""Lint rule registry.

Rules live in small themed modules; :func:`default_rules` returns one fresh
instance of each.  To add a rule: subclass :class:`repro.analysis.linter.Rule`
in a module here and register the class in :data:`RULE_CLASSES`
(see ``docs/analysis.md``).
"""

from __future__ import annotations

from ..linter import Rule
from .comm import WireFramingRule
from .dtype import MissingDtypeRule
from .perf import PerLayerLoopRule
from .exports import AllConsistencyRule, MissingAllRule, UndefinedExportRule
from .randomness import ModuleLevelRNGRule
from .style import BareExceptRule, MutableDefaultRule
from .tensor import TensorDataMutationRule

__all__ = ["RULE_CLASSES", "default_rules", "rule_index"]

#: every registered rule class, in reporting order
RULE_CLASSES: "tuple[type[Rule], ...]" = (
    ModuleLevelRNGRule,
    MutableDefaultRule,
    BareExceptRule,
    UndefinedExportRule,
    AllConsistencyRule,
    MissingAllRule,
    MissingDtypeRule,
    TensorDataMutationRule,
    WireFramingRule,
    PerLayerLoopRule,
)


def default_rules() -> "list[Rule]":
    """Fresh instances of every registered rule."""
    return [cls() for cls in RULE_CLASSES]


def rule_index() -> "dict[str, type[Rule]]":
    """Map rule id -> class (for ``--select`` and docs)."""
    return {cls.id: cls for cls in RULE_CLASSES}
