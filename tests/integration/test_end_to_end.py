"""End-to-end training sanity: every method learns; orderings hold on easy data."""

import numpy as np
import pytest

from repro.core import Hyper
from repro.data import make_blobs
from repro.harness.local import LocalTrainer
from repro.nn import MLP
from repro.optim import StepDecay
from repro.sim import ClusterConfig, SimulatedTrainer


@pytest.fixture(scope="module")
def setup():
    ds = make_blobs(n_samples=600, num_classes=5, dim=16, sep=1.8, noise=1.0, seed=2)
    factory = lambda: MLP(16, (32,), 5, seed=11)
    return ds, factory


HYPER = Hyper(lr=0.1, momentum=0.7, ratio=0.1, secondary_ratio=0.1, min_sparse_size=0)


@pytest.mark.parametrize("method", ["asgd", "gd_async", "dgc_async", "dgs"])
def test_method_learns_in_simulation(setup, method):
    ds, factory = setup
    trainer = SimulatedTrainer(
        method, factory, ds,
        ClusterConfig.with_bandwidth(4, 10, compute_mean_s=0.02),
        batch_size=32, total_iterations=250, hyper=HYPER, seed=0,
    )
    r = trainer.run()
    assert r.final_accuracy > 0.85, f"{method} failed to learn: {r.final_accuracy}"


def test_msgd_baseline_learns(setup):
    ds, factory = setup
    r = LocalTrainer(factory, ds, 32, 250, lr=0.1, momentum=0.7,
                     schedule=StepDecay(0.1, (8.0,), 0.1), seed=0).run()
    assert r.final_accuracy > 0.9


def test_dgs_secondary_compression_still_learns(setup):
    ds, factory = setup
    trainer = SimulatedTrainer(
        "dgs", factory, ds,
        ClusterConfig.with_bandwidth(4, 10, compute_mean_s=0.02),
        batch_size=32, total_iterations=250, hyper=HYPER,
        secondary_compression=True, seed=0,
    )
    r = trainer.run()
    assert r.final_accuracy > 0.85


def test_loss_decreases_over_training(setup):
    ds, factory = setup
    trainer = SimulatedTrainer(
        "dgs", factory, ds,
        ClusterConfig.with_bandwidth(4, 10, compute_mean_s=0.02),
        batch_size=32, total_iterations=250, hyper=HYPER, seed=0,
    )
    r = trainer.run()
    first_quarter = np.mean(r.loss_vs_step.ys[: len(r.loss_vs_step) // 4])
    last_quarter = np.mean(r.loss_vs_step.ys[-len(r.loss_vs_step) // 4 :])
    assert last_quarter < first_quarter / 2


def test_staleness_grows_with_workers(setup):
    ds, factory = setup

    def staleness(n):
        trainer = SimulatedTrainer(
            "asgd", factory, ds,
            ClusterConfig.with_bandwidth(n, 10, compute_mean_s=0.02),
            batch_size=32, total_iterations=40 * n, hyper=HYPER, seed=0,
        )
        return trainer.run().mean_staleness

    s2, s8 = staleness(2), staleness(8)
    assert s8 > s2
    assert s8 == pytest.approx(7, abs=1.5)  # ~N−1 for homogeneous workers
