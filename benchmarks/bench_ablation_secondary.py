"""Ablation — secondary compression (Algorithm 2, lines 5–11)."""

from repro.harness.experiments import ablation_secondary
from repro.harness.config import is_fast_mode


def test_ablation_secondary(run_experiment):
    report = run_experiment(ablation_secondary, "ablation_secondary")
    if is_fast_mode():
        return  # smoke pass: shape assertions hold at full scale only
    rows = {r[0]: r for r in report.rows}
    off, on = rows["off"], rows["on (99%)"]
    # Downstream volume drops by a large factor...
    assert float(on[2]) < 0.5 * float(off[2])
    # ...at a small accuracy cost (≤3 pts on the micro workload).
    assert float(on[1].rstrip("%")) > float(off[1].rstrip("%")) - 3.0
