"""NOQ001 — hygiene of ``# repro: noqa`` suppression pragmas.

A suppression pragma that silently does the wrong thing is worse than a
finding: ``# repro: noqa lck001`` parses as a *bare* noqa (the rule list
is malformed) and suppresses every rule on the line, and ``# repro: noqa
ABC999`` suppresses nothing anyone checks.  This rule scans real comment
tokens (``tokenize``, so rule ids quoted in docstrings don't trip it) and
reports:

* a pragma naming a rule id the suite does not know;
* a pragma whose trailing text looks like an attempted rule list but does
  not parse as one — the dangerous silent-bare-noqa case.

NOQ001 findings are themselves exempt from noqa suppression (the pragma
being reported cannot be trusted to suppress its own report).
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Iterator

from ..findings import _NOQA_RE, Finding
from ..linter import LintConfig, ModuleInfo, Rule

__all__ = ["PragmaHygieneRule"]

#: trailing text that was probably meant as a rule list (``lck001``,
#: ``, LCK1`` …) but failed to parse as ``[A-Z]{3}\d{3}``
_RULEISH_RE = re.compile(r"\s*,?\s*[A-Za-z]{2,5}[-_]?\d{1,4}\b")


class PragmaHygieneRule(Rule):
    id = "NOQ001"
    summary = "suppression pragma is malformed or names an unknown rule"

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
        from . import known_rule_ids

        known = known_rule_ids()
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(module.source).readline))
        except (tokenize.TokenError, IndentationError):
            return  # PAR001 territory
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _NOQA_RE.search(tok.string)
            if m is None:
                continue
            line = tok.start[0]
            listed = m.group("rules")
            if listed is not None:
                for code in (r.strip() for r in listed.split(",")):
                    if code not in known:
                        yield Finding(
                            self.id,
                            module.path,
                            line,
                            f"noqa pragma names unknown rule {code!r} — "
                            "it suppresses nothing (see --list-rules)",
                            tok.start[1],
                        )
            trailing = tok.string[m.end() :]
            if _RULEISH_RE.match(trailing):
                yield Finding(
                    self.id,
                    module.path,
                    line,
                    f"noqa pragma has unparseable rule list {trailing.strip()!r} — "
                    "it silently became a bare noqa suppressing every rule "
                    "(rule ids are 3-4 capitals + three digits)",
                    tok.start[1],
                )
