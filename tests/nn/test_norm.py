"""BatchNorm behaviour: normalisation, running stats, eval mode, gradients."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.nn import BatchNorm1d, BatchNorm2d


class TestBatchNorm1d:
    def test_normalises_batch(self, rng):
        bn = BatchNorm1d(4)
        x = Tensor(rng.normal(3.0, 2.0, size=(64, 4)))
        out = bn(x)
        np.testing.assert_allclose(out.data.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.data.std(axis=0), 1.0, atol=1e-2)

    def test_affine_params_apply(self, rng):
        bn = BatchNorm1d(2)
        bn.weight.data[:] = [2.0, 3.0]
        bn.bias.data[:] = [1.0, -1.0]
        x = Tensor(rng.normal(size=(32, 2)))
        out = bn(x)
        np.testing.assert_allclose(out.data.mean(axis=0), [1.0, -1.0], atol=1e-10)

    def test_running_stats_update(self, rng):
        bn = BatchNorm1d(3, momentum=0.5)
        x = rng.normal(5.0, 1.0, size=(128, 3))
        bn(Tensor(x))
        assert (bn._buffers["running_mean"] > 1.0).all()

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm1d(3)
        for _ in range(50):
            bn(Tensor(rng.normal(2.0, 1.5, size=(64, 3))))
        bn.eval()
        x = Tensor(np.full((4, 3), 2.0))
        out = bn(x)
        np.testing.assert_allclose(out.data, 0.0, atol=0.2)

    def test_eval_deterministic(self, rng):
        bn = BatchNorm1d(3)
        bn(Tensor(rng.normal(size=(32, 3))))
        bn.eval()
        x = Tensor(rng.normal(size=(4, 3)))
        np.testing.assert_array_equal(bn(x).data, bn(x).data)

    def test_rejects_wrong_ndim(self, rng):
        with pytest.raises(ValueError):
            BatchNorm1d(3)(Tensor(rng.normal(size=(2, 3, 4))))

    def test_gradcheck(self, rng):
        bn = BatchNorm1d(3)
        x = Tensor(rng.normal(size=(6, 3)), requires_grad=True)
        assert gradcheck(lambda x: (bn(x) ** 2).sum(), [x], atol=1e-3)

    def test_grad_flows_to_affine(self, rng):
        bn = BatchNorm1d(3)
        x = Tensor(rng.normal(size=(8, 3)))
        bn(x).sum().backward()
        assert bn.weight.grad is not None and bn.bias.grad is not None


class TestBatchNorm2d:
    def test_normalises_per_channel(self, rng):
        bn = BatchNorm2d(3)
        x = Tensor(rng.normal(4.0, 2.0, size=(8, 3, 5, 5)))
        out = bn(x)
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-10)

    def test_rejects_wrong_ndim(self, rng):
        with pytest.raises(ValueError):
            BatchNorm2d(3)(Tensor(rng.normal(size=(2, 3))))

    def test_gradcheck(self, rng):
        bn = BatchNorm2d(2)
        x = Tensor(rng.normal(size=(3, 2, 3, 3)), requires_grad=True)
        assert gradcheck(lambda x: (bn(x) ** 2).sum(), [x], atol=1e-3)

    def test_running_var_unbiased(self, rng):
        bn = BatchNorm2d(1, momentum=1.0)
        x = rng.normal(0.0, 3.0, size=(16, 1, 8, 8))
        bn(Tensor(x))
        n = 16 * 64
        expected = x.var() * n / (n - 1)
        np.testing.assert_allclose(bn._buffers["running_var"], expected, rtol=1e-10)


class TestLayerNorm:
    def test_normalises_last_axis(self, rng):
        from repro.nn import LayerNorm

        ln = LayerNorm(16)
        x = Tensor(rng.normal(3.0, 2.0, size=(8, 16)))
        out = ln(x)
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.data.std(axis=-1), 1.0, atol=1e-2)

    def test_batch_size_independent(self, rng):
        from repro.nn import LayerNorm

        ln = LayerNorm(8)
        x = rng.normal(size=(4, 8))
        full = ln(Tensor(x)).data
        one = ln(Tensor(x[:1])).data
        np.testing.assert_allclose(full[:1], one, atol=1e-12)

    def test_same_in_train_and_eval(self, rng):
        from repro.nn import LayerNorm

        ln = LayerNorm(8)
        x = Tensor(rng.normal(size=(4, 8)))
        train_out = ln(x).data
        ln.eval()
        np.testing.assert_array_equal(ln(x).data, train_out)

    def test_gradcheck(self, rng):
        from repro.nn import LayerNorm

        ln = LayerNorm(5)
        x = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
        assert gradcheck(lambda x: (ln(x) ** 2).sum(), [x], atol=1e-3)

    def test_wrong_trailing_dim(self, rng):
        from repro.nn import LayerNorm

        with pytest.raises(ValueError):
            LayerNorm(5)(Tensor(rng.normal(size=(2, 6))))


class TestGroupNorm:
    def test_group_stats(self, rng):
        from repro.nn import GroupNorm

        gn = GroupNorm(2, 4)
        x = Tensor(rng.normal(5.0, 3.0, size=(2, 4, 6, 6)))
        out = gn(x).data
        grouped = out.reshape(2, 2, 2 * 36)
        np.testing.assert_allclose(grouped.mean(axis=2), 0.0, atol=1e-10)

    def test_divisibility_enforced(self):
        from repro.nn import GroupNorm

        with pytest.raises(ValueError):
            GroupNorm(3, 4)

    def test_gradcheck(self, rng):
        from repro.nn import GroupNorm

        gn = GroupNorm(2, 4)
        x = Tensor(rng.normal(size=(2, 4, 3, 3)), requires_grad=True)
        assert gradcheck(lambda x: (gn(x) ** 2).sum(), [x], atol=1e-3)

    def test_shape_validation(self, rng):
        from repro.nn import GroupNorm

        with pytest.raises(ValueError):
            GroupNorm(2, 4)(Tensor(rng.normal(size=(2, 5, 3, 3))))
