"""Unified execution layer: one Trainer front-end over pluggable backends.

The worker↔server lifecycle of Algorithms 1–3 runs on five substrates —
real threads, real processes with a binary wire codec, real TCP sockets
with elastic membership and checkpoint/restore, an event-driven
virtual-clock simulator, and a barrier-synchronised SSGD reference.  This
package makes them interchangeable:

* :class:`RunConfig` — one description of a distributed run;
* :func:`get_backend` / :func:`register_backend` — the backend registry
  (``"threaded"`` | ``"process"`` | ``"socket"`` | ``"simulated"`` |
  ``"sync"``);
* :class:`Trainer` / :func:`train` — the front-end that executes a config
  on any backend;
* :class:`TrainResult` — the one result schema every backend returns,
  with explicit ``None``/NaN semantics for unmeasured fields.

``python -m repro.exec`` runs a tiny workload on every registered backend
and validates the schema (the ``make backend-matrix`` smoke).  See
``docs/execution.md`` for the field-by-field contract.
"""

from .backend import (
    Backend,
    apply_config_overrides,
    collect_results,
    default_backend,
    get_backend,
    list_backends,
    notify_result,
    register_backend,
    use_backend,
    use_config_overrides,
)
# importing .backends registers the five built-ins
from .backends import (
    ProcessBackend,
    SimulatedBackend,
    SocketBackend,
    SyncBackend,
    ThreadedBackend,
)
from .config import RunConfig
from .result import TrainResult, validate_result
from .trainer import Trainer, train

__all__ = [
    "Backend",
    "RunConfig",
    "TrainResult",
    "Trainer",
    "train",
    "get_backend",
    "register_backend",
    "list_backends",
    "default_backend",
    "use_backend",
    "use_config_overrides",
    "apply_config_overrides",
    "collect_results",
    "notify_result",
    "validate_result",
    "ThreadedBackend",
    "ProcessBackend",
    "SocketBackend",
    "SimulatedBackend",
    "SyncBackend",
]
