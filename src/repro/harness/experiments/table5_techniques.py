"""Table 5 — the techniques matrix, generated from the method registry.

This table is qualitative in the paper; here it is derived from the same
``MethodSpec`` flags that actually configure the trainers, so the matrix is
guaranteed to describe what the code does.
"""

from __future__ import annotations

from ...core.methods import METHODS
from ..report import ExperimentReport

__all__ = ["run"]

PAPER_ROWS = [
    ("ASGD", "N", "N", "N", "N"),
    ("GD-async / DGS without SAMomentum",
     "Model Difference Tracking based Dual-way Gradient Sparsification", "N", "N", "Y"),
    ("DGC-async",
     "Model Difference Tracking based Dual-way Gradient Sparsification",
     "vanilla momentum", "Y", "Y"),
    ("DGS",
     "Model Difference Tracking based Dual-way Gradient Sparsification",
     "SAMomentum", "N", "N"),
]


def run(fast: bool | None = None, seeds: tuple[int, ...] = ()) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="Table 5",
        title="Techniques in DGS (derived from the method registry)",
        headers=(
            "Method",
            "Gradient Sparsification",
            "Momentum",
            "Momentum Correction",
            "Remaining Gradients Accumulation",
        ),
        paper_rows=PAPER_ROWS,
    )
    for name in ("asgd", "gd_async", "dgc_async", "dgs"):
        spec = METHODS[name]
        report.add_row(
            spec.label,
            spec.sparsification,
            spec.momentum,
            "Y" if spec.momentum_correction else "N",
            "Y" if spec.residual_accumulation else "N",
        )
    report.add_note("Matrix is generated from repro.core.methods.METHODS — the registry that configures the trainers.")
    return report
