"""§6 future-work ablation — DGS combined with other compressors.

"the combination of DGS and other compression approaches (e.g. TernGrad,
randomly coordinates dropping) can be considered" — implemented in
``repro.core.extensions``; this bench measures the accuracy/volume
trade-off of each combination.
"""

from __future__ import annotations

from ..config import get_workload
from ..report import ExperimentReport
from ..runners import run_distributed
from .common import resolve_fast

__all__ = ["run"]

METHODS = ("asgd", "dgs", "dgs_terngrad", "terngrad", "qsgd", "random_dropping")


def run(fast: bool | None = None, seeds: tuple[int, ...] = (0,)) -> ExperimentReport:
    fast = resolve_fast(fast)
    wl = get_workload("cifar10")
    seed = seeds[0]

    report = ExperimentReport(
        experiment_id="Sec 6 (combinations)",
        title="DGS combined with quantisation / random dropping (4 workers)",
        headers=("Method", "Top-1 Accuracy", "Upload compression", "Overall compression"),
    )
    for method in METHODS:
        r = run_distributed(method, wl, 4, fast=fast, seed=seed)
        up = r.upload_dense_bytes / max(r.upload_bytes, 1)
        report.add_row(
            method,
            f"{100 * r.final_accuracy:.2f}%",
            f"{up:.0f}x",
            f"{r.compression_ratio:.0f}x",
        )
    report.add_note(
        "Expected shape: dgs_terngrad pushes upload compression well past plain DGS "
        "(2-bit values) at a modest accuracy cost; unbiased random dropping trails "
        "magnitude-based selection in accuracy."
    )
    return report
