"""TCP-socket parameter-server trainer (the "socket" execution backend).

The deployment-shaped backend: the server binds a real TCP listener, and
workers — forked locally here, but the protocol is host-agnostic —
*connect* to it, register via the elastic-membership handshake
(:class:`~repro.comm.frames.ControlFrame` join → full-model bootstrap),
train, and leave.  Every exchange travels as actual bytes through
:class:`~repro.comm.socket.SocketChannel` — the same frames, the same
float32 wire conversion, the same serve loop
(:func:`~repro.comm.service.serve_channels`) as the pipe transport.

What this backend adds over the process backend:

* **Elastic membership** — workers are not pre-wired: each one joins
  through the listener (``join_delay_s`` delays chosen workers to
  exercise mid-run joins, whose ``v_k`` is bootstrapped from the live
  ``M_t``), and a :class:`~repro.ps.membership.WorkerDirectory` records
  the join/leave/crash/eviction history onto the result.
* **Straggler eviction** — ``evict_after_s`` arms the serve loop's
  silence timeout and the per-channel read deadline; an evicted or
  crashed worker resolves to the same partial-result semantics as a
  pipe-backend crash (``fail_at`` hard-kills workers to prove it).
* **Checkpoint/restore** — ``checkpoint_every`` writes the server's
  contiguous flat state (:mod:`repro.ps.checkpoint`) every N applied
  updates; ``restore_from`` restores it before serving, and workers
  fast-forward their data streams by the checkpoint's per-worker update
  counts so the continued run consumes the batches the original would
  have.

Requires the ``fork`` start method, like the process backend.  Prefer the
unified front-end (``repro.exec.Trainer`` with ``backend="socket"``).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import time
from typing import Callable, Mapping

from ..core.layerops import parameters_of
from ..core.partition import PartitionMap
from ..core.methods import Hyper, MethodSpec
from ..data.loader import DataLoader
from ..data.synthetic import Dataset
from ..exec.common import (
    build_server,
    build_worker,
    resolve_hyper,
    resolve_method,
    resolve_schedule,
)
from ..exec.result import TrainResult
from ..metrics.curves import Curve
from ..metrics.evaluation import evaluate_params
from ..nn.module import Module
from ..obs.span import relabel_records
from ..obs.tracer import Tracer, current_tracer, use_tracer
from ..optim.schedules import Schedule
from .membership import WorkerDirectory

__all__ = ["SocketTrainer"]

#: exit code of a hard-crashed (fail_at) worker — never a normal exit
_CRASH_EXIT_CODE = 17


def _worker_main(
    host: str,
    port: int,
    worker_id: int,
    num_workers: int,
    model_factory: Callable[[], Module],
    dataset: Dataset,
    batch_size: int,
    iterations: int,
    method: MethodSpec,
    hyper: Hyper,
    schedule: Schedule,
    seed: int,
    fail_at: "int | None",
    join_delay_s: float,
    fast_forward: int,
    arena: bool,
    arena_dtype: "object | None",
    trace: bool,
    shard_addresses: "list[tuple[str, int]] | None" = None,
) -> None:
    from ..comm.protocol import run_worker_loop  # lazy: comm imports ps
    from ..comm.socket import SocketChannel

    if join_delay_s > 0:
        time.sleep(join_delay_s)  # mid-run joiner: everyone else is training
    loader = DataLoader(dataset, batch_size, seed=seed)
    model = model_factory()
    # theta0 is NOT pre-seeded here: the join handshake installs the live
    # θ_t (which at t=0 is θ_0 after the float32 wire round-trip) — the
    # same state a reconnecting or late worker would receive.
    node = build_worker(
        worker_id,
        num_workers,
        model,
        loader,
        method,
        hyper,
        schedule,
        theta0=None,
        arena=arena,
        arena_dtype=arena_dtype,
    )
    # Restored run: burn the batches the pre-checkpoint run consumed so
    # the continued stream picks up exactly where the original left off.
    for _ in range(fast_forward):
        node.batches.next_batch()
    node.iteration = fast_forward

    def crash_hook(i: int) -> None:
        if fail_at is not None and i >= fail_at:
            # Hard crash: no leave, no close frame — the server must
            # survive on the EOF it sees when the connection drops.
            os._exit(_CRASH_EXIT_CODE)

    fanout = None
    shard_channels = None
    if shard_addresses is not None:
        # Rebuild the server's partition locally: same shapes, same
        # itemsize, same deterministic packing — no wire negotiation.
        params = parameters_of(model)
        fanout = PartitionMap(
            {k: v.shape for k, v in params.items()},
            len(shard_addresses),
            itemsize=next(iter(params.values())).itemsize,
        )
        # The map clamps to the layer count exactly as the server's does,
        # so dial only the listeners that own a non-empty shard.
        shard_channels = [
            SocketChannel.connect(h, p)
            for h, p in shard_addresses[: fanout.num_shards]
        ]
        channel = shard_channels[0]  # the control-plane channel
    else:
        channel = SocketChannel.connect(host, port)
    if trace:
        child_tracer = Tracer()
        with use_tracer(child_tracer):
            run_worker_loop(
                node,
                channel,
                iterations,
                on_iteration=crash_hook,
                ship_telemetry=True,
                register=True,
                shard_fanout=fanout,
                shard_channels=shard_channels,
            )
    else:
        run_worker_loop(
            node,
            channel,
            iterations,
            on_iteration=crash_hook,
            register=True,
            shard_fanout=fanout,
            shard_channels=shard_channels,
        )


class _RecordingListener:
    """Listener wrapper keeping every accepted channel reachable, so the
    trainer can sum wire-byte counters after the serve loop drops them."""

    def __init__(self, listener) -> None:
        self.listener = listener
        self.accepted: "list" = []

    @property
    def waitable(self):
        return self.listener.waitable

    def accept(self):
        channel = self.listener.accept()
        self.accepted.append(channel)
        return channel

    def close(self) -> None:
        self.listener.close()


class SocketTrainer:
    """PS training over real TCP connections, workers joining elastically."""

    def __init__(
        self,
        method: "MethodSpec | str",
        model_factory: Callable[[], Module],
        dataset: Dataset,
        num_workers: int,
        batch_size: int,
        iterations_per_worker: int,
        hyper: Hyper | None = None,
        schedule: Schedule | None = None,
        secondary_compression: bool | None = None,
        staleness_damping: bool = False,
        num_shards: int = 1,
        seed: int = 0,
        fail_at: "Mapping[int, int] | None" = None,
        join_delay_s: "Mapping[int, float] | None" = None,
        evict_after_s: "float | None" = None,
        checkpoint_every: "int | None" = None,
        checkpoint_path: "str | None" = None,
        restore_from: "str | None" = None,
        bind: "tuple[str, int] | None" = None,
        tracer: "object | None" = None,
        arena: bool = False,
        arena_dtype: "object | None" = None,
        shard_parallel: bool = False,
    ) -> None:
        if checkpoint_every is not None and checkpoint_path is None:
            raise ValueError("checkpoint_every requires checkpoint_path")
        if shard_parallel and num_shards < 2:
            raise ValueError("shard_parallel requires num_shards >= 2")
        if shard_parallel and checkpoint_every is not None:
            # The checkpoint cadence counts on the shard-0 serve loop while
            # other shards are mid-step; a snapshot taken there could tear
            # across shards.  Keep the combination off until checkpoints
            # quiesce every shard loop.
            raise ValueError("shard_parallel does not support checkpoint_every")
        self.method = resolve_method(method)
        #: explicit tracer; None ⇒ the ambient repro.obs tracer at run time
        self.tracer = tracer
        self.hyper = resolve_hyper(hyper)
        self.schedule = resolve_schedule(schedule, self.hyper)
        self.model_factory = model_factory
        self.dataset = dataset
        self.num_workers = num_workers
        self.batch_size = batch_size
        self.iterations_per_worker = iterations_per_worker
        self.seed = seed
        self.arena = arena
        self.arena_dtype = arena_dtype
        #: worker id → local iteration at which that worker hard-crashes
        self.fail_at = dict(fail_at) if fail_at else {}
        #: worker id → seconds to hold back before connecting (mid-run join)
        self.join_delay_s = dict(join_delay_s) if join_delay_s else {}
        #: serve-loop silence budget; also the per-channel read deadline
        self.evict_after_s = evict_after_s
        self.checkpoint_every = checkpoint_every
        self.checkpoint_path = checkpoint_path
        self.restore_from = restore_from
        #: per-shard listeners + serve loops instead of one accept funnel
        self.shard_parallel = shard_parallel
        #: (host, port) to bind; None ⇒ loopback-ephemeral (CI default)
        self.bind = bind

        self.eval_model = model_factory()
        self.theta0 = parameters_of(self.eval_model)
        self.server = build_server(
            self.method,
            self.theta0,
            num_workers,
            self.hyper,
            secondary_compression=secondary_compression,
            staleness_damping=staleness_damping,
            arena=arena,
            arena_dtype=arena_dtype,
            num_shards=num_shards,
        )
        self.membership = WorkerDirectory(self.server)

    # ------------------------------------------------------------------
    def run(self) -> TrainResult:
        from ..comm.service import ServerService, serve_channels  # lazy: comm imports ps
        from ..comm.socket import ShardListenerGroup, SocketListener
        from .checkpoint import load_checkpoint, save_checkpoint

        fast_forward = {w: 0 for w in range(self.num_workers)}
        if self.restore_from is not None:
            header = load_checkpoint(self.server, self.restore_from)
            for w, count in header["shards"][0]["updates"].items():
                fast_forward[int(w)] = int(count)

        tracer = self.tracer if self.tracer is not None else current_tracer()
        trace = bool(getattr(tracer, "enabled", False))
        t_start = time.perf_counter()
        host, port = self.bind if self.bind is not None else ("127.0.0.1", 0)
        if self.shard_parallel:
            # One listener per shard, each drained by its own serve loop;
            # shard 0's doubles as the membership/accounting control plane.
            group = ShardListenerGroup(
                self.server.num_shards,
                host,
                port,
                tracer=tracer,
                read_timeout_s=self.evict_after_s,
            )
            listeners = [_RecordingListener(shard) for shard in group]
            shard_addresses = group.addresses
            host, port = shard_addresses[0]
        else:
            listeners = [
                _RecordingListener(
                    SocketListener(
                        host, port, tracer=tracer, read_timeout_s=self.evict_after_s
                    )
                )
            ]
            shard_addresses = None
            host, port = listeners[0].listener.address
        listener = listeners[0]

        ctx = mp.get_context("fork")
        procs: "list[mp.Process]" = []
        for w in range(self.num_workers):
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    host,
                    port,
                    w,
                    self.num_workers,
                    self.model_factory,
                    self.dataset,
                    self.batch_size,
                    self.iterations_per_worker,
                    self.method,
                    self.hyper,
                    self.schedule,
                    self.seed,
                    self.fail_at.get(w),
                    self.join_delay_s.get(w, 0.0),
                    fast_forward.get(w, 0),
                    self.arena,
                    self.arena_dtype,
                    trace,
                    shard_addresses,
                ),
                daemon=True,
            )
            proc.start()
            procs.append(proc)

        loss_curve = Curve("loss_vs_server_step")

        def on_update(updates: int) -> None:
            if (
                self.checkpoint_every is not None
                and updates % self.checkpoint_every == 0
            ):
                save_checkpoint(self.server, self.checkpoint_path)

        service = ServerService(self.server, membership=self.membership)
        try:
            if self.shard_parallel:
                # Shard s>0 loops run on their own threads with a bare
                # service (no membership: shard 0 owns the directory, so a
                # crash deregisters exactly once) and no loss/update hooks
                # (their frames are all shard>0, which the accounting rule
                # skips anyway).  Each loop terminates on its own set of
                # per-worker close frames; the front-end stats object is
                # mutex-guarded and per-shard upload bytes sum exactly to
                # the whole-frame accounting.
                thread_errors: "list[BaseException]" = []

                def _serve_shard(s: int) -> None:
                    try:
                        serve_channels(
                            [],
                            ServerService(self.server),
                            stats=self.server.stats,
                            listener=listeners[s],
                            expected_closes=self.num_workers,
                            straggler_timeout_s=self.evict_after_s,
                        )
                    except BaseException as exc:  # surfaced after join
                        thread_errors.append(exc)

                threads = [
                    threading.Thread(
                        target=_serve_shard,
                        args=(s,),
                        name=f"shard-serve-{s}",
                        daemon=True,
                    )
                    for s in range(1, len(listeners))
                ]
                for thread in threads:
                    thread.start()
                report = serve_channels(
                    [],
                    service,
                    stats=self.server.stats,
                    on_loss=lambda loss: loss_curve.add(len(loss_curve) + 1, loss),
                    listener=listener,
                    expected_closes=self.num_workers,
                    straggler_timeout_s=self.evict_after_s,
                )
                for thread in threads:
                    thread.join()
                if thread_errors:
                    raise thread_errors[0]
            else:
                report = serve_channels(
                    [],  # every channel arrives through the listener
                    service,
                    stats=self.server.stats,
                    on_loss=lambda loss: loss_curve.add(len(loss_curve) + 1, loss),
                    on_update=on_update if self.checkpoint_every is not None else None,
                    listener=listener,
                    expected_closes=self.num_workers,
                    straggler_timeout_s=self.evict_after_s,
                )
        finally:
            for wrapped in listeners:
                wrapped.close()
            for proc in procs:
                proc.join(timeout=30)
                if proc.is_alive():
                    proc.terminate()
        elapsed = time.perf_counter() - t_start

        # Final checkpoint so a restore picks up from the very end, not
        # the last cadence boundary.
        if self.checkpoint_every is not None:
            save_checkpoint(self.server, self.checkpoint_path)

        shipped_metrics: "list[dict]" = []
        for wid, frame in sorted(report.telemetry.items()):
            shipped_metrics.extend(dict(m) for m in frame.metrics)
            if trace:
                tracer.absorb(relabel_records(frame.spans, f"worker-{wid}"))

        global_params = self.server.global_model()
        acc, loss = evaluate_params(
            self.eval_model, global_params, self.dataset.x_val, self.dataset.y_val
        )
        stats = self.server.stats
        staleness = self.server.staleness_summary()
        channels = [ch for wrapped in listeners for ch in wrapped.accepted]
        return TrainResult(
            method=self.method.name,
            backend="socket",
            num_workers=self.num_workers,
            num_shards=getattr(self.server, "num_shards", 1),
            final_accuracy=acc,
            final_loss=loss,
            loss_vs_step=loss_curve,
            total_iterations=self.server.timestamp,
            samples_processed=report.samples_processed,
            mean_staleness=self.server.staleness_meter.avg,
            staleness_p50=staleness["p50"],
            staleness_p99=staleness["p99"],
            worker_staleness=staleness["per_worker"],
            metrics=self.server.metrics.snapshot() + shipped_metrics,
            upload_bytes=stats.upload_bytes,
            download_bytes=stats.download_bytes,
            upload_dense_bytes=stats.upload_dense_bytes,
            download_dense_bytes=stats.download_dense_bytes,
            wire_bytes_up=sum(ch.wire_bytes_received for ch in channels),
            wire_bytes_down=sum(ch.wire_bytes_sent for ch in channels),
            makespan_s=elapsed,
            clock="wall",
            server_state_bytes=self.server.server_state_bytes(),
            worker_state_bytes=report.worker_state_bytes,
            errors=list(report.errors),
        )
