"""Static and dynamic correctness tooling for the reproduction.

Three pillars (run together by ``python -m repro.analysis``):

* :mod:`repro.analysis.linter` — repo-specific AST lint rules over
  ``src/repro/**`` (RNG plumbing, mutable defaults, bare except, ``__all__``
  consistency, hot-path dtype hygiene, ``Tensor.data`` ownership);
* :mod:`repro.analysis.locks` — static lock discipline for the parameter
  server, plus :mod:`repro.analysis.race`, the dynamic ThreadSanitizer-lite
  harness used by the threaded-trainer tests;
* :mod:`repro.analysis.sanitize` — opt-in NaN/Inf and dtype-drift hooks
  over autograd ops, optimizer steps and compression codecs
  (``python -m repro run <exp> --sanitize``).

See ``docs/analysis.md`` for rule descriptions and suppression syntax.
"""

from __future__ import annotations

from .findings import Finding
from .linter import LintConfig, Rule, lint_file, lint_tree
from .locks import check_lock_discipline
from .race import CheckedLock, GuardedProxy, RaceMonitor, RaceViolation, instrument_server
from .sanitize import NumericFault, Sanitizer, sanitize, sanitizer_selfcheck

__all__ = [
    "CheckedLock",
    "Finding",
    "GuardedProxy",
    "LintConfig",
    "NumericFault",
    "RaceMonitor",
    "RaceViolation",
    "Rule",
    "Sanitizer",
    "check_lock_discipline",
    "instrument_server",
    "lint_file",
    "lint_tree",
    "run_analysis",
    "sanitize",
    "sanitizer_selfcheck",
]


def run_analysis(
    root: "str | None" = None,
    lint: bool = True,
    locks: bool = True,
    sanitizer: bool = True,
    config: "LintConfig | None" = None,
) -> "list[Finding]":
    """Run every enabled pillar over ``root`` (default: the repro package)."""
    from pathlib import Path

    if root is None:
        root = str(Path(__file__).resolve().parent.parent)
    findings: list[Finding] = []
    if lint:
        findings.extend(lint_tree(root, config=config))
    if locks:
        findings.extend(check_lock_discipline(root))
    if sanitizer:
        findings.extend(
            Finding("SAN001", "<sanitizer-selfcheck>", 1, problem)
            for problem in sanitizer_selfcheck()
        )
    return findings
