"""Typed frames — everything that crosses a worker↔server channel.

DGS's contribution is what travels on the wire in *both* directions
(Algorithms 1/2, Eq. 5–6), so the wire vocabulary is small and explicit:

* :class:`GradientFrame` — upstream ``encode(g_{k,t})`` plus the worker's
  training loss for that step (the server side records loss curves without
  a second side channel);
* :class:`DiffFrame` / :class:`ModelFrame` — the two downstream modes
  (sparse model difference ``G_k`` vs full dense model);
* :class:`CloseFrame` — explicit end-of-stream with the worker's final
  local accounting (samples processed, strategy buffer bytes) and an
  optional error description.  A channel that dies *without* a close frame
  is a crash; the serving loop reports it instead of hanging.

The byte representation wraps the payload codec (``repro.ps.codec``) in a
four-byte frame header, replacing the ad-hoc ``b"G"``/``b"S"`` tag bytes
the process backend used to hand-roll::

    frame    := magic u8 | kind u8 | shard i16 | body
    kind 0   : loss f64 | codec message                    (gradient)
    kind 1/2 : staleness i32 | codec message               (diff / model)
    kind 3   : worker i32 | samples i64 | state_bytes i64 |
               err_len u16 | err utf-8                     (close)
    kind 4   : worker i32 | body_len u32 | utf-8 JSON      (telemetry)
    kind 5   : worker i32 | op u8                          (control)

(`-1` in the close accounting fields means "not reported"; a zero-length
error means "no error", so an empty error string normalises to ``None``.)

``shard`` is the routing slot for a sharded server: ``-1`` addresses the
whole server (the default — a sharded front-end fans the payload out
itself), ``>= 0`` addresses one shard, and :func:`peek_shard` reads it
from the fixed-size header so transports can route a frame to the right
shard queue *without decoding the payload*.  Control frames (close /
telemetry / membership) always carry ``-1``.

:class:`ControlFrame` (kind 5) is the elastic-membership handshake: a
worker *joins* before its first gradient (the server bootstraps its
``v_k`` from ``M_t`` and replies with a :class:`ModelFrame` carrying the
current global model) and may *leave* explicitly before its close frame.
The ops are the entire membership wire vocabulary — everything else
(eviction, crash handling) is a server-side decision about an existing
channel, not a frame.

:class:`TelemetryFrame` (kind 4) is the observability side channel: a
worker process ships its tracer spans and metric snapshots back to the
parent just before its close frame, so a process-backend ``--trace`` run
yields one merged trace instead of a parent-only view.  The body is the
JSON object ``{"spans": [...], "metrics": [...]}`` in the
``repro.obs.span`` record schema.  Telemetry is diagnostic, not payload:
``nbytes()`` is 0 so analytic byte accounting (what DGS compresses) is
unchanged, while the raw wire counters still see every byte.

Frames also carry the *analytic* byte accounting every backend reports
(:meth:`nbytes` / :meth:`dense_nbytes`), so ``TrainResult`` byte fields
mean the same thing whether the frame crossed an OS pipe, a thread
boundary, or a simulated link.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Any

from ..ps.codec import decode_message, encode_message
from ..ps.messages import DiffMessage, GradientMessage, ModelMessage

__all__ = [
    "FRAME_MAGIC",
    "KIND_GRADIENT",
    "KIND_DIFF",
    "KIND_MODEL",
    "KIND_CLOSE",
    "KIND_TELEMETRY",
    "KIND_CONTROL",
    "Frame",
    "GradientFrame",
    "DiffFrame",
    "ModelFrame",
    "CloseFrame",
    "TelemetryFrame",
    "ControlFrame",
    "CONTROL_JOIN",
    "CONTROL_LEAVE",
    "reply_frame",
    "encode_frame",
    "decode_frame",
    "peek_shard",
    "peek_kind",
]

FRAME_MAGIC = 0xDF  # one-byte frame magic ("Dual-way Frame")

_HEADER = struct.Struct("<BBh")  # magic, kind, shard (-1 = whole server)
_LOSS = struct.Struct("<d")
_STALENESS = struct.Struct("<i")  # diff/model: the codec header has no slot for it
_CLOSE = struct.Struct("<iqq")  # worker_id, samples, state_bytes (-1 ⇒ not reported)
_ERR_LEN = struct.Struct("<H")

#: wire kind bytes — public so routing transports can demux a raw frame
#: (:func:`peek_kind`) without decoding the payload
KIND_GRADIENT = 0
KIND_DIFF = 1
KIND_MODEL = 2
KIND_CLOSE = 3
KIND_TELEMETRY = 4
KIND_CONTROL = 5

_KIND_GRADIENT = KIND_GRADIENT
_KIND_DIFF = KIND_DIFF
_KIND_MODEL = KIND_MODEL
_KIND_CLOSE = KIND_CLOSE
_KIND_TELEMETRY = KIND_TELEMETRY
_KIND_CONTROL = KIND_CONTROL

_TELEMETRY = struct.Struct("<iI")  # worker_id, body length
_CONTROL = struct.Struct("<iB")  # worker_id, op

#: membership ops a ControlFrame can carry
CONTROL_JOIN = "join"
CONTROL_LEAVE = "leave"
_CONTROL_OPS = (CONTROL_JOIN, CONTROL_LEAVE)  # wire op byte = tuple index


@dataclass(frozen=True)
class GradientFrame:
    """Upstream: one compressed gradient plus the step's training loss."""

    message: GradientMessage
    loss: float
    #: target shard for header-routed transports; -1 = whole server
    shard: int = -1

    @property
    def worker_id(self) -> int:
        return self.message.worker_id

    def nbytes(self) -> int:
        """Analytic payload bytes (the accounting every backend reports)."""
        return self.message.nbytes()

    def dense_nbytes(self) -> int:
        return self.message.dense_nbytes()


@dataclass(frozen=True)
class DiffFrame:
    """Downstream: the server's sparse model difference ``G_k``."""

    message: DiffMessage
    #: originating shard for header-routed transports; -1 = whole server
    shard: int = -1

    @property
    def worker_id(self) -> int:
        return self.message.worker_id

    def nbytes(self) -> int:
        return self.message.nbytes()

    def dense_nbytes(self) -> int:
        return self.message.dense_nbytes()


@dataclass(frozen=True)
class ModelFrame:
    """Downstream for vanilla ASGD / sync broadcast: the dense model."""

    message: ModelMessage
    #: originating shard for header-routed transports; -1 = whole server
    shard: int = -1

    @property
    def worker_id(self) -> int:
        return self.message.worker_id

    def nbytes(self) -> int:
        return self.message.nbytes()

    def dense_nbytes(self) -> int:
        return self.message.dense_nbytes()


@dataclass(frozen=True)
class CloseFrame:
    """Explicit end-of-stream with the worker's final local accounting.

    ``samples_processed`` / ``worker_state_bytes`` are ``None`` when the
    sender could not report them; ``error`` carries a crash description
    when the worker loop died with an exception (the accounting observed
    up to the failure is still attached).
    """

    worker_id: int = -1
    samples_processed: "int | None" = None
    worker_state_bytes: "int | None" = None
    error: "str | None" = None

    def nbytes(self) -> int:
        """Close frames carry no payload; they cost only their header."""
        return 0

    def dense_nbytes(self) -> int:
        return 0


@dataclass(frozen=True)
class TelemetryFrame:
    """One worker's spans + metric snapshots, shipped at loop close.

    ``spans`` are ``repro.obs.span`` records (the worker's own tracer
    output, *not yet* relabeled — the receiver stamps them with their
    origin lane); ``metrics`` are ``MetricsRegistry.snapshot()`` records.
    Both must be JSON-serialisable.
    """

    worker_id: int = -1
    spans: "tuple[dict[str, Any], ...]" = field(default_factory=tuple)
    metrics: "tuple[dict[str, Any], ...]" = field(default_factory=tuple)

    def nbytes(self) -> int:
        """Telemetry is diagnostic, not payload — analytic bytes are 0."""
        return 0

    def dense_nbytes(self) -> int:
        return 0


@dataclass(frozen=True)
class ControlFrame:
    """Membership handshake: ``join`` (expects a ModelFrame reply carrying
    the bootstrapped global model) or ``leave`` (one-way, before close)."""

    worker_id: int
    op: str = CONTROL_JOIN

    def __post_init__(self) -> None:
        if self.op not in _CONTROL_OPS:
            raise ValueError(f"unknown control op {self.op!r}; known: {_CONTROL_OPS}")

    def nbytes(self) -> int:
        """Membership is control plane, not payload — analytic bytes are 0."""
        return 0

    def dense_nbytes(self) -> int:
        return 0


Frame = "GradientFrame | DiffFrame | ModelFrame | CloseFrame | TelemetryFrame | ControlFrame"


def reply_frame(
    msg: "DiffMessage | ModelMessage", shard: int = -1
) -> "DiffFrame | ModelFrame":
    """Wrap a server reply message in its downstream frame type."""
    if isinstance(msg, DiffMessage):
        return DiffFrame(msg, shard=shard)
    if isinstance(msg, ModelMessage):
        return ModelFrame(msg, shard=shard)
    raise TypeError(f"not a downstream message: {type(msg).__name__}")


def peek_shard(raw: "bytes | memoryview") -> int:
    """Read the shard id off a frame header without decoding the payload.

    The header is fixed-size, so a routing transport inspects the first
    four bytes and forwards the (still-encoded) frame to the right shard
    queue.  Returns ``-1`` for whole-server frames.
    """
    buf = memoryview(raw)
    if len(buf) < _HEADER.size:
        raise ValueError("truncated frame (no header)")
    magic, _kind, shard = _HEADER.unpack_from(buf, 0)
    if magic != FRAME_MAGIC:
        raise ValueError("bad magic: not a repro.comm frame")
    return shard


def peek_kind(raw: "bytes | memoryview") -> int:
    """Read the frame kind off the fixed header without decoding the payload.

    Paired with :func:`peek_shard` by demuxing transports: a shard-addressed
    ``KIND_GRADIENT`` frame can be queued to its shard lane still-encoded,
    while control-plane kinds (close / control / telemetry) stay on the
    demux thread.
    """
    buf = memoryview(raw)
    if len(buf) < _HEADER.size:
        raise ValueError("truncated frame (no header)")
    magic, kind, _shard = _HEADER.unpack_from(buf, 0)
    if magic != FRAME_MAGIC:
        raise ValueError("bad magic: not a repro.comm frame")
    return kind


def encode_frame(frame: Frame) -> bytes:
    """Serialise any frame to its wire representation."""
    if isinstance(frame, GradientFrame):
        return (
            _HEADER.pack(FRAME_MAGIC, _KIND_GRADIENT, frame.shard)
            + _LOSS.pack(frame.loss)
            + encode_message(frame.message)
        )
    if isinstance(frame, (DiffFrame, ModelFrame)):
        kind = _KIND_DIFF if isinstance(frame, DiffFrame) else _KIND_MODEL
        return (
            _HEADER.pack(FRAME_MAGIC, kind, frame.shard)
            + _STALENESS.pack(frame.message.staleness)
            + encode_message(frame.message)
        )
    if isinstance(frame, TelemetryFrame):
        body = json.dumps(
            {"spans": list(frame.spans), "metrics": list(frame.metrics)},
            ensure_ascii=False,
        ).encode("utf-8")
        return (
            _HEADER.pack(FRAME_MAGIC, _KIND_TELEMETRY, -1)
            + _TELEMETRY.pack(frame.worker_id, len(body))
            + body
        )
    if isinstance(frame, ControlFrame):
        return _HEADER.pack(FRAME_MAGIC, _KIND_CONTROL, -1) + _CONTROL.pack(
            frame.worker_id, _CONTROL_OPS.index(frame.op)
        )
    if isinstance(frame, CloseFrame):
        err = frame.error.encode("utf-8") if frame.error is not None else b""
        samples = -1 if frame.samples_processed is None else frame.samples_processed
        state = -1 if frame.worker_state_bytes is None else frame.worker_state_bytes
        return (
            _HEADER.pack(FRAME_MAGIC, _KIND_CLOSE, -1)
            + _CLOSE.pack(frame.worker_id, samples, state)
            + _ERR_LEN.pack(len(err))
            + err
        )
    raise TypeError(f"cannot encode {type(frame).__name__}")


def decode_frame(raw: "bytes | memoryview") -> Frame:
    """Inverse of :func:`encode_frame`."""
    buf = memoryview(raw)
    if len(buf) < _HEADER.size:
        raise ValueError("truncated frame (no header)")
    magic, kind, shard = _HEADER.unpack_from(buf, 0)
    if magic != FRAME_MAGIC:
        raise ValueError("bad magic: not a repro.comm frame")
    off = _HEADER.size
    if kind == _KIND_GRADIENT:
        (loss,) = _LOSS.unpack_from(buf, off)
        msg = decode_message(buf[off + _LOSS.size :])
        if not isinstance(msg, GradientMessage):
            raise ValueError("gradient frame wraps a non-gradient message")
        return GradientFrame(msg, loss, shard=shard)
    if kind in (_KIND_DIFF, _KIND_MODEL):
        (staleness,) = _STALENESS.unpack_from(buf, off)
        msg = decode_message(buf[off + _STALENESS.size :])
        expected = DiffMessage if kind == _KIND_DIFF else ModelMessage
        if not isinstance(msg, expected):
            raise ValueError(f"frame kind {kind} wraps a {type(msg).__name__}")
        msg.staleness = staleness  # the codec header has no staleness slot
        return reply_frame(msg, shard=shard)
    if kind == _KIND_CLOSE:
        worker, samples, state = _CLOSE.unpack_from(buf, off)
        off += _CLOSE.size
        (err_len,) = _ERR_LEN.unpack_from(buf, off)
        off += _ERR_LEN.size
        error = bytes(buf[off : off + err_len]).decode("utf-8") if err_len else None
        return CloseFrame(
            worker_id=worker,
            samples_processed=samples if samples >= 0 else None,
            worker_state_bytes=state if state >= 0 else None,
            error=error,
        )
    if kind == _KIND_TELEMETRY:
        worker, body_len = _TELEMETRY.unpack_from(buf, off)
        off += _TELEMETRY.size
        if len(buf) < off + body_len:
            raise ValueError("truncated telemetry frame body")
        body = json.loads(bytes(buf[off : off + body_len]).decode("utf-8"))
        return TelemetryFrame(
            worker_id=worker,
            spans=tuple(body.get("spans", [])),
            metrics=tuple(body.get("metrics", [])),
        )
    if kind == _KIND_CONTROL:
        worker, op = _CONTROL.unpack_from(buf, off)
        if op >= len(_CONTROL_OPS):
            raise ValueError(f"unknown control op byte {op}")
        return ControlFrame(worker_id=worker, op=_CONTROL_OPS[op])
    raise ValueError(f"unknown frame kind {kind}")
