"""Unified tracing + metrics for every execution layer (``repro.obs``).

One schema, three producers, three exporters:

* **Producers** — the threaded trainer (real threads, wall clock), the
  event-driven simulator (virtual clock), and the opt-in hot-path hooks
  (autograd ops, top-k selection, wire codec) all emit *span* records;
  the parameter server additionally meters lock wait/hold per worker.
* **Schema** — ``repro.obs.span``: JSONL records (``meta`` / ``span`` /
  ``metric`` / ``step``) with explicit clock domains.
* **Exporters** — Chrome ``chrome://tracing`` JSON, a flamegraph-style
  text summary, and Prometheus text, behind ``python -m repro.obs``
  (``convert`` / ``summary`` / ``top`` / ``smoke``) and
  ``python -m repro run --trace out.json``.

See ``docs/observability.md`` for the full API and overhead numbers.
"""

from .export import (
    check_stream,
    load_jsonl,
    render_summary,
    render_top,
    self_times,
    spans_from_trace_events,
    summarize,
    to_chrome_trace,
    to_prometheus,
    validate_chrome_trace,
    write_chrome_trace,
)
from .hooks import HOT_PATH_GROUPS, profile_hot_paths
from .metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry, ObsLogger
from .span import Span, span_record, validate_record, validate_records
from .tracer import NullTracer, Tracer, current_tracer, set_tracer, use_tracer

__all__ = [
    "Span",
    "span_record",
    "validate_record",
    "validate_records",
    "Tracer",
    "NullTracer",
    "current_tracer",
    "set_tracer",
    "use_tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsLogger",
    "DEFAULT_BUCKETS",
    "HOT_PATH_GROUPS",
    "profile_hot_paths",
    "check_stream",
    "load_jsonl",
    "summarize",
    "render_summary",
    "render_top",
    "self_times",
    "spans_from_trace_events",
    "to_chrome_trace",
    "to_prometheus",
    "validate_chrome_trace",
    "write_chrome_trace",
]
