"""Evaluation helpers."""

import numpy as np
import pytest

from repro.core.layerops import parameters_of
from repro.metrics.evaluation import evaluate_model, evaluate_params
from repro.nn import MLP


class TestEvaluateModel:
    def test_returns_accuracy_and_loss(self, tiny_dataset, tiny_model_factory):
        model = tiny_model_factory()
        acc, loss = evaluate_model(model, tiny_dataset.x_val, tiny_dataset.y_val)
        assert 0.0 <= acc <= 1.0
        assert loss > 0

    def test_restores_training_mode(self, tiny_dataset, tiny_model_factory):
        model = tiny_model_factory()
        model.train()
        evaluate_model(model, tiny_dataset.x_val, tiny_dataset.y_val)
        assert model.training

    def test_batching_equals_full_pass(self, tiny_dataset, tiny_model_factory):
        model = tiny_model_factory()
        a1 = evaluate_model(model, tiny_dataset.x_val, tiny_dataset.y_val, batch_size=7)
        a2 = evaluate_model(model, tiny_dataset.x_val, tiny_dataset.y_val, batch_size=1000)
        assert a1[0] == pytest.approx(a2[0])
        assert a1[1] == pytest.approx(a2[1], rel=1e-9)


class TestEvaluateParams:
    def test_restores_original_params(self, tiny_dataset, tiny_model_factory):
        model = tiny_model_factory()
        before = parameters_of(model)
        other = {n: np.zeros_like(a) for n, a in before.items()}
        evaluate_params(model, other, tiny_dataset.x_val, tiny_dataset.y_val)
        after = parameters_of(model)
        for n in before:
            np.testing.assert_array_equal(before[n], after[n])

    def test_evaluates_given_params_not_own(self, tiny_dataset, tiny_model_factory):
        model = tiny_model_factory()
        zeros = {n: np.zeros_like(a) for n, a in parameters_of(model).items()}
        acc_zero, _ = evaluate_params(model, zeros, tiny_dataset.x_val, tiny_dataset.y_val)
        # all-zero MLP outputs uniform logits -> accuracy ≈ chance
        assert acc_zero < 0.6
