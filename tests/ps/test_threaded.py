"""Threaded (real-concurrency) trainer integration."""

import numpy as np
import pytest

from repro.core import Hyper
from repro.ps import ThreadedTrainer


@pytest.mark.parametrize("method", ["asgd", "gd_async", "dgc_async", "dgs"])
def test_threaded_training_learns(method, tiny_dataset, tiny_model_factory):
    trainer = ThreadedTrainer(
        method,
        tiny_model_factory,
        tiny_dataset,
        num_workers=3,
        batch_size=16,
        iterations_per_worker=25,
        hyper=Hyper(lr=0.1, momentum=0.7, ratio=0.1, min_sparse_size=0),
        seed=0,
    )
    result = trainer.run()
    assert result.final_accuracy > 0.7  # blobs are easy; random is 0.25
    assert result.server_timestamp == 3 * 25
    assert result.upload_bytes > 0 and result.download_bytes > 0
    assert len(result.loss_curve) == 75


def test_staleness_is_nonzero_with_multiple_workers(tiny_dataset, tiny_model_factory):
    trainer = ThreadedTrainer(
        "asgd", tiny_model_factory, tiny_dataset,
        num_workers=4, batch_size=16, iterations_per_worker=15, seed=0,
    )
    result = trainer.run()
    assert result.mean_staleness > 0


def test_single_worker_has_zero_staleness(tiny_dataset, tiny_model_factory):
    trainer = ThreadedTrainer(
        "asgd", tiny_model_factory, tiny_dataset,
        num_workers=1, batch_size=16, iterations_per_worker=10, seed=0,
    )
    result = trainer.run()
    assert result.mean_staleness == 0


def test_msgd_rejected(tiny_dataset, tiny_model_factory):
    with pytest.raises(ValueError):
        ThreadedTrainer("msgd", tiny_model_factory, tiny_dataset, 2, 16, 5)


def test_sparse_methods_upload_fewer_bytes(tiny_dataset, tiny_model_factory):
    def run(method):
        return ThreadedTrainer(
            method, tiny_model_factory, tiny_dataset,
            num_workers=2, batch_size=16, iterations_per_worker=10,
            hyper=Hyper(ratio=0.02, min_sparse_size=0), seed=0,
        ).run()

    dense = run("asgd")
    sparse = run("dgs")
    assert sparse.upload_bytes < dense.upload_bytes / 5
