"""The transport-agnostic server side of every channel.

Before this module the accept/route/reply loop lived twice: once inside
:class:`InProcChannel` (synchronous dispatch) and once inside
``serve_pipe_channels`` (pipe multiplexing).  Adding a third transport
(TCP sockets) would have made it three.  This module owns it once:

* :class:`ServerService` — apply one frame, build the reply.  Shared by
  every transport; also the home of the optional membership layer (join /
  leave control frames), so elastic workers behave identically whether
  they arrive over a thread, a pipe, or a socket.
* :func:`serve_channels` — the multiplexing serve loop, written against
  the :class:`~repro.comm.channel.Channel` contract plus one transport
  hook (``waitable`` — the object ``multiprocessing.connection.wait``
  blocks on, which accepts both pipe connections and sockets).  It
  handles gradient dispatch, telemetry absorption, membership control
  frames, close accounting, crash detection (EOF without a close frame),
  straggler eviction, and elastic accept from a listener.

Routing: byte transports expose ``recv_raw()`` and the loop reads the
target shard off the fixed 4-byte header with
:func:`~repro.comm.frames.peek_shard` *before* decoding the payload —
the peeked id, not the decoded frame attribute, is the routing authority,
exactly what the frame header exists for.

**Parallel mode** (``shard_lanes=N``): the loop's own thread degrades to a
pure demux — it never decodes a shard-addressed gradient payload.  Raw
frame bytes are routed by the peeked header onto per-shard dispatch
queues; N shard-executor lanes decode the payload *outside* any lock,
dispatch through ``service`` (which takes only that shard's lock), encode
the reply outside the lock too, and hand the bytes to a single
reply-writer thread.  One writer serialises every ``send``, so a frame's
bytes are never interleaved on a channel and no send ever happens under a
lock (the lock graph stays exactly as serial mode leaves it).  The
control plane — close, membership, telemetry, whole-server gradients, EOF
crash detection, straggler eviction — stays on the demux thread with
byte-identical serial semantics.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait
from typing import TYPE_CHECKING, Callable

from ..compression.stats import CompressionStats
from ..obs import names as obs_names
from ..obs.tracer import current_tracer
from .frames import (
    KIND_GRADIENT,
    CloseFrame,
    ControlFrame,
    Frame,
    GradientFrame,
    TelemetryFrame,
    decode_frame,
    encode_frame,
    peek_kind,
    peek_shard,
    reply_frame,
)

if TYPE_CHECKING:
    from ..ps.server import ParameterServer

__all__ = ["ServerService", "ServeReport", "serve_channels"]


class ServerService:
    """The server side of every channel: apply one frame, build the reply.

    One instance per run, shared by all of that run's channels; thread
    safety is the :class:`~repro.ps.server.ParameterServer` lock's job, so
    concurrent callers (the threaded backend) contend exactly as before.

    ``membership`` is the optional elastic-worker directory (e.g.
    :class:`~repro.ps.membership.WorkerDirectory`): when present,
    :meth:`control` routes join/leave frames through it; when absent,
    joins bootstrap directly against the server (same state transition,
    no bookkeeping).
    """

    def __init__(self, server: "ParameterServer", membership: "object | None" = None) -> None:
        self.server = server
        self.membership = membership

    def __call__(self, frame: GradientFrame, shard: "int | None" = None):
        """Dispatch one gradient frame; ``shard`` overrides the frame's own
        shard slot when a byte transport already peeked it off the header."""
        shard = getattr(frame, "shard", -1) if shard is None else shard
        if shard >= 0:
            # Shard-addressed frame (routed off the header by the
            # transport): dispatch straight to that shard and stamp the
            # reply with the same shard id so the worker can reassemble.
            return reply_frame(
                self.server.handle_shard(shard, frame.message), shard=shard
            )
        return reply_frame(self.server.handle(frame.message))

    def control(self, frame: ControlFrame):
        """Apply one membership control frame.

        ``join`` bootstraps the worker's ``v_k`` from ``M_t`` under the
        (per-shard) server lock and returns the :class:`ModelFrame` reply
        carrying θ_t; ``leave`` deregisters and returns ``None`` (one-way).
        """
        if frame.op == "join":
            if self.membership is not None:
                msg = self.membership.register(frame.worker_id)
            else:
                msg = self.server.bootstrap_worker(frame.worker_id)
            return reply_frame(msg)
        if self.membership is not None:
            self.membership.deregister(frame.worker_id)
        return None

    def register_locks(self, registry) -> None:
        """Enroll every lock this service can acquire in a lock-order
        :class:`~repro.analysis.concurrency.LockRegistry` (the single
        server lock, or — via
        :meth:`~repro.ps.sharded.ShardedParameterServer.register_lock` —
        one entry per shard, plus the membership directory's lock)."""
        self.server.register_lock(registry)
        if self.membership is not None and hasattr(self.membership, "register_lock"):
            self.membership.register_lock(registry)


@dataclass
class ServeReport:
    """What the serving loop observed across all worker channels."""

    #: summed final accounting from clean close frames
    samples_processed: int = 0
    worker_state_bytes: int = 0
    #: human-readable crash/error descriptions, one per failed worker
    errors: "list[str]" = field(default_factory=list)
    clean_closes: int = 0
    crashes: int = 0
    #: worker_id → TelemetryFrame shipped before that worker's close
    telemetry: "dict[int, TelemetryFrame]" = field(default_factory=dict)
    #: membership traffic observed by the loop
    joins: int = 0
    leaves: int = 0
    evictions: int = 0
    #: gradient frames applied (drives checkpoint cadence)
    updates: int = 0


def _recv_frame(channel) -> "tuple[Frame, int]":
    """One frame off ``channel`` plus its routing shard.

    Byte transports expose ``recv_raw()``: the shard id is peeked off the
    fixed header *before* the payload is decoded (the header's whole
    purpose); object transports fall back to ``recv()`` and the frame's
    own shard slot.
    """
    recv_raw = getattr(channel, "recv_raw", None)
    if recv_raw is not None:
        raw = recv_raw()
        return decode_frame(raw), peek_shard(raw)
    frame = channel.recv()
    return frame, getattr(frame, "shard", -1)


class _ShardLanes:
    """Per-shard execution lanes + one reply writer behind a demux loop.

    The demux thread calls :meth:`submit` with *raw* frame bytes and the
    peeked shard id; nothing here runs on the demux thread again until
    :meth:`shutdown`.  Division of labour, chosen so no thread ever sends
    while holding a lock and no payload is ever decoded under one:

    * **lane thread** (one per shard) — ``decode_frame`` outside any
      lock, dispatch through the service (only that shard's lock is taken
      inside ``handle_shard``), record byte accounting, ``encode_frame``
      the reply outside the lock, enqueue the bytes for the writer;
    * **writer thread** (exactly one) — ``send`` / ``send_raw`` per
      reply.  A single writer means per-channel frame bytes are never
      interleaved without any send mutex existing, and it is the only
      thread that bumps the update accounting for lane traffic;
    * **demux thread** — retains the entire control plane (close frames,
      membership, telemetry, EOF crash detection, eviction), so lifecycle
      accounting has exactly one owner and a reply the writer fails to
      deliver is simply dropped (the demux will see the EOF).

    Lane threads acquire shard locks through the service, so a lock-order
    registry attached to the server (``ServerService.register_locks``)
    records their acquisition stacks like any other thread's.

    Exceptions raised on a lane or the writer are stored and re-raised on
    the demux thread (:meth:`check`), preserving the serial loop's
    propagation semantics.
    """

    def __init__(
        self,
        num_lanes: int,
        service,
        stats: "CompressionStats | None",
        worker_ids: "dict[object, int]",
        account: "Callable[[float, int], None]",
    ) -> None:
        self.service = service
        self.stats = stats
        self.worker_ids = worker_ids
        self.account = account
        self.full_service = isinstance(service, ServerService)
        self.num_lanes = max(1, int(num_lanes))
        self._queues: "list[queue.SimpleQueue]" = [
            queue.SimpleQueue() for _ in range(self.num_lanes)
        ]
        self._replies: "queue.SimpleQueue" = queue.SimpleQueue()
        self._error: "BaseException | None" = None
        self._down = False
        self._threads = [
            threading.Thread(target=self._lane, args=(i,), name=f"shard-lane-{i}", daemon=True)
            for i in range(self.num_lanes)
        ]
        for t in self._threads:
            t.start()
        self._writer = threading.Thread(
            target=self._write_replies, name="shard-reply-writer", daemon=True
        )
        self._writer.start()

    # -- demux-thread surface ------------------------------------------
    def submit(self, channel, raw: bytes, shard: int) -> None:
        """Queue one still-encoded shard-addressed frame onto its lane."""
        self._queues[shard % self.num_lanes].put((channel, raw, shard))

    def check(self) -> None:
        """Re-raise the first lane/writer exception on the demux thread."""
        if self._error is not None:
            exc, self._error = self._error, None
            raise exc

    def shutdown(self) -> None:
        """Drain every lane, then the writer (sentinel + join, idempotent)."""
        if self._down:
            return
        self._down = True
        for q in self._queues:
            q.put(None)
        for t in self._threads:
            t.join()
        self._replies.put(None)
        self._writer.join()

    # -- lane threads ---------------------------------------------------
    def _lane(self, idx: int) -> None:
        q = self._queues[idx]
        while True:
            item = q.get()
            if item is None:
                return
            channel, raw, shard = item
            try:
                self._process(channel, raw, shard)
            except BaseException as exc:
                if self._error is None:
                    self._error = exc

    def _process(self, channel, raw: bytes, shard: int) -> None:
        t_start = time.perf_counter()
        frame = decode_frame(raw)  # payload decode: outside every lock
        self.worker_ids[channel.waitable] = frame.worker_id
        if self.stats is not None:
            self.stats.record_upload(frame.nbytes(), frame.dense_nbytes())
        # Only this shard's lock is taken inside; the reply comes back
        # with every lock released.
        reply = self.service(frame, shard=shard) if self.full_service else self.service(frame)
        if self.stats is not None:
            self.stats.record_download(reply.nbytes(), reply.dense_nbytes())
        raw_reply = encode_frame(reply) if hasattr(channel, "send_raw") else None
        tracer = current_tracer()
        if tracer.enabled:
            tracer.add_span(
                obs_names.SERVE_LANE,
                t_start,
                time.perf_counter(),
                cat="server",
                domain="wall",
                args={"shard": shard, "worker": frame.worker_id},
            )
        self._replies.put((channel, reply, raw_reply, shard, frame.loss))

    # -- writer thread --------------------------------------------------
    def _write_replies(self) -> None:
        from .channel import ChannelClosed  # runtime import: channel imports service

        while True:
            item = self._replies.get()
            if item is None:
                return
            channel, reply, raw_reply, shard, loss = item
            try:
                if raw_reply is not None:
                    channel.send_raw(raw_reply)
                else:
                    channel.send(reply)
            except (ChannelClosed, BrokenPipeError, OSError):
                # Crash detection (and its accounting) belongs to the
                # demux thread, which will see the EOF on this channel;
                # an undeliverable reply is dropped, never double-counted.
                continue
            self.account(loss, shard)


def serve_channels(
    channels: "list",
    service: ServerService,
    stats: "CompressionStats | None" = None,
    on_loss: "Callable[[float], None] | None" = None,
    on_update: "Callable[[int], None] | None" = None,
    listener: "object | None" = None,
    expected_closes: "int | None" = None,
    straggler_timeout_s: "float | None" = None,
    shard_lanes: "int | None" = None,
) -> ServeReport:
    """Serve every channel until ``expected_closes`` workers terminate.

    The one accept/route/reply loop under the process and socket backends
    (and, via the synchronous :class:`~repro.comm.channel.InProcChannel`
    dispatch, semantically under the threaded one too):

    * **gradient** frames are routed by the shard id peeked off the raw
      header, dispatched through ``service``, and answered on the same
      channel; ``stats`` records the analytic byte accounting and
      ``on_loss`` sees each frame's training loss after the reply ships.
    * **close** frames settle a worker's final accounting; a channel that
      dies *without* one (EOF / EPIPE) is a crash and becomes an error on
      the report — a graceful partial result, never a hang.
    * **telemetry** frames are absorbed onto the report (no reply).
    * **control** frames run the membership handshake via
      :meth:`ServerService.control`; a join's ModelFrame reply ships back
      on the worker's channel.
    * ``listener`` (optional) is polled alongside the channels; accepted
      connections join the serve set — elastic workers connect mid-run.
    * ``straggler_timeout_s`` (optional) evicts a channel that has been
      silent for that long: the channel is closed, the eviction recorded
      as an error (partial-result semantics, same as a crash), and the
      membership layer notified.

    ``expected_closes`` defaults to ``len(channels)``; pass the total
    worker count when a listener will deliver some of them later.

    ``shard_lanes=N`` turns on parallel mode (module docstring): this
    thread demuxes shard-addressed gradient frames — still encoded — onto
    N per-shard lanes and keeps everything else.  Update accounting is
    then counted on shard-0 sub-frames only, so ``report.updates`` (and
    the ``on_loss`` / ``on_update`` cadence) means *worker steps* whether
    a step arrives as one whole-server frame or as N shard sub-frames —
    the same rule the serial loop applies to shard-addressed traffic.
    """
    report = ServeReport()
    # Duck-typed service: plain callables (tests, adapters) lack the
    # membership/control surface and take no shard keyword.
    membership = getattr(service, "membership", None)
    full_service = isinstance(service, ServerService)
    open_channels = {ch.waitable: ch for ch in channels}
    worker_ids: "dict[object, int]" = {}  # waitable → last known worker id
    last_seen = {w: time.monotonic() for w in open_channels}
    expected = len(channels) if expected_closes is None else expected_closes
    terminated = 0
    poll = None if straggler_timeout_s is None else max(straggler_timeout_s / 4.0, 0.01)

    # One update == one worker step.  A fanned-out step arrives as N
    # shard sub-frames; its shard-0 sub-frame is the step's single
    # accounting token (every step touches shard 0 exactly once).  The
    # mutex makes the counter safe against the reply-writer thread in
    # parallel mode; serial mode pays one uncontended acquire.
    account_mu = threading.Lock()

    def _account(loss: float, shard: int) -> None:
        if shard > 0:
            return
        with account_mu:
            report.updates += 1
            count = report.updates
        if on_loss is not None:
            on_loss(loss)
        if on_update is not None:
            on_update(count)

    lanes = (
        _ShardLanes(shard_lanes, service, stats, worker_ids, _account)
        if shard_lanes is not None
        else None
    )

    def _drop(waitable, channel) -> None:
        open_channels.pop(waitable, None)
        last_seen.pop(waitable, None)
        try:
            channel.close()
        except OSError:
            pass

    try:
        terminated = _demux_loop(
            report,
            service,
            stats,
            _account,
            listener,
            straggler_timeout_s,
            membership,
            full_service,
            open_channels,
            worker_ids,
            last_seen,
            expected,
            poll,
            lanes,
            _drop,
        )
    finally:
        if lanes is not None:
            lanes.shutdown()
    if lanes is not None:
        lanes.check()  # errors that surfaced while draining
    return report


def _demux_loop(
    report: ServeReport,
    service,
    stats,
    account: "Callable[[float, int], None]",
    listener,
    straggler_timeout_s,
    membership,
    full_service: bool,
    open_channels: dict,
    worker_ids: dict,
    last_seen: dict,
    expected: int,
    poll: "float | None",
    lanes: "_ShardLanes | None",
    drop: "Callable[[object, object], None]",
) -> int:
    """The accept/route/reply multiplexing loop shared by both modes."""
    terminated = 0
    _drop = drop
    while terminated < expected:
        if lanes is not None:
            lanes.check()
        waitables = list(open_channels)
        if listener is not None:
            waitables.append(listener.waitable)
        if not waitables:
            break  # nothing left to wait on; remaining workers never arrived
        ready = wait(waitables, timeout=poll)
        now = time.monotonic()
        for obj in ready:
            if listener is not None and obj is listener.waitable:
                accepted = listener.accept()
                open_channels[accepted.waitable] = accepted
                last_seen[accepted.waitable] = now
                continue
            channel = open_channels[obj]
            last_seen[obj] = now
            try:
                recv_raw = getattr(channel, "recv_raw", None)
                if recv_raw is not None:
                    raw = recv_raw()
                    shard = peek_shard(raw)
                    if (
                        lanes is not None
                        and shard >= 0
                        and peek_kind(raw) == KIND_GRADIENT
                    ):
                        # Parallel fast path: route the still-encoded
                        # frame to its shard lane; this thread never
                        # touches the payload.
                        lanes.submit(channel, raw, shard)
                        continue
                    frame = decode_frame(raw)
                else:
                    frame = channel.recv()
                    shard = getattr(frame, "shard", -1)
            except (EOFError, OSError):
                report.crashes += 1
                who = worker_ids.get(obj)
                label = f"worker {who}" if who is not None else "worker"
                report.errors.append(f"{label} channel closed without a close frame (crash)")
                if who is not None and membership is not None:
                    membership.deregister(who, reason="crash")
                _drop(obj, channel)
                terminated += 1
                continue
            if isinstance(frame, CloseFrame):
                worker_ids[obj] = frame.worker_id
                if frame.samples_processed is not None:
                    report.samples_processed += frame.samples_processed
                if frame.worker_state_bytes is not None:
                    report.worker_state_bytes += frame.worker_state_bytes
                if frame.error is not None:
                    report.crashes += 1
                    report.errors.append(f"worker {frame.worker_id}: {frame.error}")
                else:
                    report.clean_closes += 1
                _drop(obj, channel)
                terminated += 1
                continue
            if isinstance(frame, TelemetryFrame):
                report.telemetry[frame.worker_id] = frame
                continue  # diagnostic side channel: no reply, channel stays open
            if isinstance(frame, ControlFrame):
                worker_ids[obj] = frame.worker_id
                reply = service.control(frame)
                if frame.op == "join":
                    report.joins += 1
                    try:
                        channel.send(reply)
                    except (BrokenPipeError, OSError):
                        report.crashes += 1
                        report.errors.append(
                            f"worker {frame.worker_id}: channel broke during join (crash)"
                        )
                        _drop(obj, channel)
                        terminated += 1
                else:
                    report.leaves += 1
                continue
            if not isinstance(frame, GradientFrame):
                report.errors.append(f"unexpected {type(frame).__name__} from worker channel")
                _drop(obj, channel)
                terminated += 1
                continue
            worker_ids[obj] = frame.worker_id
            if stats is not None:
                stats.record_upload(frame.nbytes(), frame.dense_nbytes())
            reply = service(frame, shard=shard) if full_service else service(frame)
            if stats is not None:
                stats.record_download(reply.nbytes(), reply.dense_nbytes())
            try:
                channel.send(reply)
            except (BrokenPipeError, OSError):
                report.crashes += 1
                report.errors.append(
                    f"worker {frame.worker_id}: channel broke while sending the reply (crash)"
                )
                _drop(obj, channel)
                terminated += 1
                continue
            account(frame.loss, shard)
        if straggler_timeout_s is not None:
            cutoff = time.monotonic() - straggler_timeout_s
            for obj in [w for w, seen in last_seen.items() if seen < cutoff]:
                channel = open_channels[obj]
                who = worker_ids.get(obj)
                label = f"worker {who}" if who is not None else "worker"
                report.evictions += 1
                report.crashes += 1
                report.errors.append(
                    f"{label} evicted as straggler (silent > {straggler_timeout_s:g}s)"
                )
                if who is not None and membership is not None:
                    membership.deregister(who, reason="evicted")
                _drop(obj, channel)
                terminated += 1
    return terminated
