"""Synchronous data-parallel SGD (SSGD) on the simulated cluster.

The paper frames DGS against the synchronous world (§2, §3.1): Gradient
Dropping and DGC were designed for SSGD, whose barrier makes every round as
slow as its slowest worker ("worker lags", §1).  This trainer provides that
reference point on the same simulator, and — per the paper's conclusion
that "SAMomentum is a general design and can be used to design new
synchronization training approaches" (§6) — it accepts any worker strategy,
including SAMomentum, giving the synchronous-DGS variant.

Semantics per round: every worker computes gradients on the *same* model
version, transforms them through its strategy, the server sums the updates
(Eq. 7) and applies them once, then broadcasts the (dense) aggregated
update.  Virtual time per round = straggler compute time + serialised
uploads + server step + serialised per-worker downloads, all through the
shared link model.

Prefer the unified front-end (``repro.exec.Trainer`` with
``backend="sync"``); this class remains the underlying engine and a thin
public adapter.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Mapping

import numpy as np

from ..compression.coding import SparseTensor
from ..compression.stats import CompressionStats
from ..core.arena import LayerArena
from ..core.layerops import add_payload, parameters_of
from ..core.methods import Hyper, MethodSpec
from ..data.loader import DataLoader
from ..data.synthetic import Dataset
from ..exec.common import resolve_hyper, resolve_method, resolve_schedule
from ..exec.result import TrainResult
from ..metrics.curves import Curve
from ..metrics.evaluation import evaluate_model
from ..metrics.meters import EMAMeter
from ..nn.module import Module
from ..optim.schedules import Schedule
from ..ps.messages import ModelMessage
from ..ps.worker import WorkerNode
from .cluster import ClusterConfig
from .network import SharedLink

__all__ = ["SynchronousTrainer", "SyncResult"]

#: deprecated alias — the synchronous engine now returns the unified schema
SyncResult = TrainResult


class SynchronousTrainer:
    """Barrier-synchronised data-parallel training on the virtual cluster."""

    def __init__(
        self,
        method: "MethodSpec | str",
        model_factory: Callable[[], Module],
        dataset: Dataset,
        cluster: ClusterConfig,
        batch_size: int,
        rounds: int,
        hyper: Hyper | None = None,
        schedule: Schedule | None = None,
        seed: int = 0,
        arena: bool = False,
        arena_dtype: "object | None" = None,
    ) -> None:
        # SSGD has no server, so single-node methods (e.g. msgd) are allowed.
        self.method = resolve_method(method, require_distributed=False)
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        self.hyper = resolve_hyper(hyper)
        self.schedule = resolve_schedule(schedule, self.hyper)
        self.dataset = dataset
        self.cluster = cluster
        self.rounds = rounds
        self._rng = np.random.default_rng(cluster.seed * 104729 + seed)

        n = cluster.num_workers
        loader = DataLoader(dataset, batch_size, seed=seed)
        self.model = model_factory()
        theta0 = parameters_of(self.model)
        shapes = {k: v.shape for k, v in theta0.items()}
        self.arena = bool(arena)
        # Reused aggregation buffer for the arena path (zeroed per round).
        self._agg_arena = (
            LayerArena(shapes, dtype=np.float32 if arena_dtype is None else arena_dtype)
            if self.arena
            else None
        )
        self.workers = [
            WorkerNode(
                w,
                self.model,  # all workers share the single global model
                loader.worker_iterator(w, n),
                self.method.make_strategy(
                    shapes, self.hyper, arena=arena, arena_dtype=arena_dtype
                ),
                schedule=self.schedule,
            )
            for w in range(n)
        ]
        self.uplink = SharedLink(cluster.uplink)
        self.downlink = self.uplink if cluster.duplex == "half" else SharedLink(cluster.downlink)
        self._speed = cluster.compute.worker_speed_factors(n, self._rng)
        self._params = dict(self.model.named_parameters())

    # ------------------------------------------------------------------
    def run(self) -> TrainResult:
        cluster = self.cluster
        n = cluster.num_workers
        loss_vs_step = Curve("loss_vs_step")
        loss_vs_time = Curve("loss_vs_time")
        ema = EMAMeter(beta=0.9)

        # SSGD has no parameter server, so the transport gets its own byte
        # sink — frames still flow through the same comm layer as the
        # asynchronous backends, so the accounting means the same thing.
        from ..comm.frames import GradientFrame, ModelFrame  # lazy: comm imports ps
        from ..comm.sim import SimTransport

        transport = SimTransport(
            self.uplink,
            self.downlink,
            wire_scale=cluster.wire_scale,
            stats=CompressionStats(),
        )
        clock = 0.0
        straggler_lost = 0.0
        samples = 0

        for rnd in range(1, self.rounds + 1):
            # 1) Barriered compute: the round waits for the slowest worker.
            times = [
                cluster.compute.sample(self._rng, self._speed[w]) for w in range(n)
            ]
            compute_end = clock + max(times)
            # Per-worker time wasted waiting at the barrier this round.
            straggler_lost += max(times) - sum(times) / n

            # 2) Every worker computes on the same model version.
            msgs = [node.compute_step() for node in self.workers]
            samples = sum(node.samples_processed for node in self.workers)

            # 3) Serialised uploads through the shared link.
            t = compute_end
            for node, msg in zip(self.workers, msgs):
                _, t = transport.send_frame(
                    t, GradientFrame(msg, node.last_loss), worker=msg.worker_id
                )
            t += cluster.server_overhead_s

            # 4) Aggregate and apply to the global model.  Eq. (7) SUMS the
            # per-worker updates (θ_{t+1} = θ_t − Σ_k η∇_k): one round does
            # the optimisation work of N sequential steps, which is what
            # makes the barrier comparison against N async updates fair.
            mean_loss = float(np.mean([node.last_loss for node in self.workers]))
            if self._agg_arena is not None:
                agg: "Mapping[str, np.ndarray]" = self._agg_arena.zero_()
                for msg in msgs:
                    self._agg_arena.add_payload(msg.payload)
            else:
                agg = OrderedDict()
                for name, p in self._params.items():
                    agg[name] = np.zeros_like(p.data)
                for msg in msgs:
                    for name, layer in msg.payload.items():
                        if isinstance(layer, SparseTensor):
                            layer.add_into(agg[name])
                        elif hasattr(layer, "to_dense"):
                            agg[name] += layer.to_dense()
                        else:
                            agg[name] += layer
            add_payload(self._params, agg, scale=-1.0)

            # 5) Broadcast the dense aggregated update, one transfer/worker.
            for w in range(n):
                _, t = transport.recv_frame(
                    t, ModelFrame(ModelMessage(w, agg, rnd, 0)), worker=w
                )

            clock = t
            smoothed = ema.update(mean_loss)
            loss_vs_step.add(rnd, smoothed)
            loss_vs_time.add(clock, smoothed)

        acc, loss = evaluate_model(self.model, self.dataset.x_val, self.dataset.y_val)
        return TrainResult(
            method=self.method.name,
            backend="sync",
            num_workers=n,
            final_accuracy=acc,
            final_loss=loss,
            loss_vs_step=loss_vs_step,
            loss_vs_time=loss_vs_time,
            makespan_s=clock,
            clock="virtual",
            rounds=self.rounds,
            # One aggregated application per round does the optimisation
            # work of n sequential async updates (Eq. 7).
            total_iterations=self.rounds * n,
            samples_processed=samples,
            mean_staleness=0.0,  # the barrier makes every gradient current
            staleness_p50=0.0,  # defined by construction, so 0.0 not NaN;
            staleness_p99=0.0,  # worker_staleness stays None (no server)
            upload_bytes=transport.stats.upload_bytes,
            download_bytes=transport.stats.download_bytes,
            upload_dense_bytes=transport.stats.upload_dense_bytes,
            download_dense_bytes=transport.stats.download_dense_bytes,
            uplink_utilisation=self.uplink.utilisation(clock),
            downlink_utilisation=self.downlink.utilisation(clock),
            worker_state_bytes=sum(node.worker_state_bytes() for node in self.workers),
            straggler_time_s=straggler_lost,
        )
