"""Pipe channels: real bytes between OS processes, plus the serving loop.

:class:`PipeChannel` wraps one ``multiprocessing`` pipe endpoint; every
frame is byte-serialised through :mod:`repro.comm.frames` (which performs
the float32 wire conversion via the payload codec).  The same class serves
both ends: the child process drives it through the worker protocol loop,
the parent through :func:`serve_pipe_channels`.

:func:`serve_pipe_channels` is the parameter-server side of the process
backend.  The actual multiplexing loop is the transport-agnostic
:func:`repro.comm.service.serve_channels` (pipes, in-proc channels, and
sockets share it); this module keeps the pipe-flavoured entry point and
the :class:`PipeChannel` transport.  A pipe that hits EOF/EPIPE *without*
a close frame is a crashed worker: the loop records the loss of that
worker and carries on, so a worker dying mid-run yields a graceful
partial result instead of a hang.
"""

from __future__ import annotations

from typing import Callable

from ..compression.stats import CompressionStats
from ..obs import names as obs_names
from ..obs.tracer import current_tracer
from .channel import ChannelClosed
from .frames import Frame, decode_frame, encode_frame
from .service import ServeReport, ServerService, serve_channels

__all__ = ["PipeChannel", "ServeReport", "serve_pipe_channels"]


class PipeChannel:
    """One endpoint of a byte pipe speaking the comm frame format."""

    def __init__(self, connection, tracer: "object | None" = None) -> None:
        #: the underlying ``multiprocessing`` connection (read by ``wait``)
        self.connection = connection
        self.tracer = tracer
        #: actual bytes through the pipe, frame headers included
        self.wire_bytes_sent = 0
        self.wire_bytes_received = 0
        self._closed = False

    # ------------------------------------------------------------------
    def _tracer(self):
        return self.tracer if self.tracer is not None else current_tracer()

    def send(self, frame: Frame) -> None:
        if self._closed:
            raise ChannelClosed("pipe channel is closed")
        raw = encode_frame(frame)
        tracer = self._tracer()
        if tracer.enabled:
            with tracer.span(obs_names.COMM_SEND, cat="comm", bytes=len(raw)):
                self.connection.send_bytes(raw)
        else:
            self.connection.send_bytes(raw)
        self.wire_bytes_sent += len(raw)

    def send_raw(self, raw: bytes) -> None:
        """Ship an already-encoded frame.

        The parallel serve loop encodes replies on its shard-executor
        lanes (outside any lock) and hands the bytes to one writer
        thread; this entry point lets that thread skip re-encoding.
        """
        if self._closed:
            raise ChannelClosed("pipe channel is closed")
        tracer = self._tracer()
        if tracer.enabled:
            with tracer.span(obs_names.COMM_SEND, cat="comm", bytes=len(raw)):
                self.connection.send_bytes(raw)
        else:
            self.connection.send_bytes(raw)
        self.wire_bytes_sent += len(raw)

    def recv_raw(self) -> bytes:
        """One encoded frame off the pipe (the serve loop peeks the shard
        id off these bytes before decoding)."""
        if self._closed:
            raise ChannelClosed("pipe channel is closed")
        tracer = self._tracer()
        if tracer.enabled:
            with tracer.span(obs_names.COMM_RECV, cat="comm") as span:
                raw = self.connection.recv_bytes()
                span.set(bytes=len(raw))
        else:
            raw = self.connection.recv_bytes()
        self.wire_bytes_received += len(raw)
        return raw

    def recv(self) -> Frame:
        return decode_frame(self.recv_raw())

    @property
    def waitable(self):
        """What ``multiprocessing.connection.wait`` blocks on."""
        return self.connection

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.connection.close()


def serve_pipe_channels(
    channels: "list[PipeChannel]",
    service: ServerService,
    stats: "CompressionStats | None" = None,
    on_loss: "Callable[[float], None] | None" = None,
    **kwargs: object,
) -> ServeReport:
    """Run the server side of the process backend until all workers close.

    A pipe-flavoured entry point over the transport-agnostic
    :func:`~repro.comm.service.serve_channels` loop.  ``stats`` receives
    the analytic payload byte accounting (upload on every gradient frame,
    download on every reply); ``on_loss`` is called with each gradient
    frame's training loss after the reply is shipped.  Extra keyword
    arguments (``shard_lanes``, ``on_update``, …) pass straight through
    to :func:`~repro.comm.service.serve_channels`.
    """
    return serve_channels(channels, service, stats=stats, on_loss=on_loss, **kwargs)
