"""LARS optimizer (paper ref. [32])."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim.lars import LARS


def param(values):
    return Parameter(np.asarray(values, dtype=float))


class TestLocalLR:
    def test_formula(self):
        p = param([3.0, 4.0])  # ||w|| = 5
        p.grad = np.array([0.0, 2.0])  # ||g|| = 2
        opt = LARS([p], lr=1.0, trust_coefficient=0.01, eps=0.0)
        assert opt.local_lr(p) == pytest.approx(0.01 * 5 / 2)

    def test_weight_decay_in_denominator(self):
        p = param([3.0, 4.0])
        p.grad = np.array([0.0, 2.0])
        opt = LARS([p], lr=1.0, trust_coefficient=0.01, weight_decay=0.1, eps=0.0)
        assert opt.local_lr(p) == pytest.approx(0.01 * 5 / (2 + 0.5))

    def test_zero_norm_fallback(self):
        p = param([0.0])
        p.grad = np.array([1.0])
        assert LARS([p], lr=1.0).local_lr(p) == 1.0

    def test_layerwise_independence(self):
        """Layers with very different gradient scales get equalised steps."""
        big = param(np.ones(10))
        small = param(np.ones(10))
        big.grad = np.full(10, 100.0)
        small.grad = np.full(10, 0.01)
        opt = LARS([big, small], lr=1.0, momentum=0.0, trust_coefficient=0.01)
        opt.step()
        step_big = np.abs(big.data - 1.0).max()
        step_small = np.abs(small.data - 1.0).max()
        assert step_big == pytest.approx(step_small, rel=1e-5)


class TestStep:
    def test_no_momentum_matches_formula(self):
        p = param([3.0, 4.0])
        p.grad = np.array([0.0, 2.0])
        opt = LARS([p], lr=0.5, momentum=0.0, trust_coefficient=0.01, eps=0.0)
        llr = opt.local_lr(p)
        opt.step()
        np.testing.assert_allclose(p.data, [3.0, 4.0 - 0.5 * llr * 2.0])

    def test_momentum_accumulates(self):
        p = param([1.0])
        opt = LARS([p], lr=0.1, momentum=0.9)
        positions = []
        for _ in range(3):
            p.grad = np.array([1.0])
            opt.step()
            positions.append(p.data[0])
        deltas = [1.0 - positions[0], positions[0] - positions[1]]
        assert abs(deltas[1]) > 0  # moving

    def test_skips_missing_grads(self):
        p = param([1.0])
        LARS([p], lr=0.1).step()
        assert p.data[0] == 1.0

    def test_converges_on_quadratic(self):
        target = np.array([1.0, -2.0, 3.0])
        w = param(np.array([5.0, 5.0, 5.0]))
        opt = LARS([w], lr=1.0, momentum=0.9, trust_coefficient=0.05)
        for _ in range(600):
            w.grad = 2 * (w.data - target)
            opt.step()
        assert np.linalg.norm(w.data - target) < 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            LARS([param([1.0])], lr=0.0)
        with pytest.raises(ValueError):
            LARS([param([1.0])], lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            LARS([param([1.0])], lr=0.1, trust_coefficient=0.0)


class TestLargeBatchStory:
    def test_trains_mlp_at_large_batch(self, tiny_dataset, tiny_model_factory):
        """§2's claim: LARS makes large-batch training workable."""
        from repro.autograd import Tensor
        from repro.nn import cross_entropy

        model = tiny_model_factory()
        opt = LARS(model.parameters(), lr=1.0, momentum=0.9, trust_coefficient=0.02)
        x, y = tiny_dataset.x_train, tiny_dataset.y_train  # full batch
        for _ in range(120):
            loss = cross_entropy(model(Tensor(x)), y)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert float(loss.data) < 0.3
