"""Architecture layering tests (ARC001/ARC002) and the committed baseline."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.concurrency import (
    ALLOWED_DEPS,
    ArchConfig,
    baseline_path,
    build_import_graph,
    check_architecture,
    load_baseline,
    matrix_is_acyclic,
    package_edges,
)

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def write_mini_tree(root: Path, files: "dict[str, str]") -> None:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)


class TestMatrix:
    def test_matrix_is_a_dag(self):
        assert matrix_is_acyclic()

    def test_matrix_respects_the_layer_story(self):
        # analysis sits on top and runtime-imports nothing; leaf layers
        # import nothing; exec sees the backends, not vice versa
        assert ALLOWED_DEPS["analysis"] == frozenset()
        assert ALLOWED_DEPS["autograd"] == frozenset()
        assert "exec" not in ALLOWED_DEPS["ps"]
        assert "exec" not in ALLOWED_DEPS["comm"]


class TestBaseline:
    def test_baseline_is_committed(self):
        assert baseline_path().exists()
        payload = json.loads(baseline_path().read_text())
        assert payload["package_edges"]

    def test_baseline_matches_current_tree(self):
        # every current edge is either allowed or already grandfathered —
        # regenerate with `python -m repro.analysis arch --update-baseline`
        # after a *deliberate* architecture change
        edges, _ = build_import_graph(SRC)
        current = set(package_edges(edges))
        recorded = load_baseline()
        assert current <= recorded, sorted(current - recorded)

    def test_grandfathered_debt_is_exactly_the_known_edges(self):
        payload = json.loads(baseline_path().read_text())
        assert payload["grandfathered"] == ["ps -> exec", "sim -> exec"]


class TestViolationDetection:
    def test_src_tree_is_clean(self):
        findings = check_architecture(SRC)
        assert findings == [], [f.format() for f in findings]

    def test_unapproved_edge_fails(self, tmp_path):
        # a fresh low-layer module importing a high layer must trip ARC001
        write_mini_tree(
            tmp_path,
            {
                "__init__.py": "",
                "low/__init__.py": "",
                "low/util.py": "from ..high import engine\n",
                "high/__init__.py": "",
                "high/engine.py": "x = 1\n",
            },
        )
        config = ArchConfig(
            allowed={"high": frozenset({"low"}), "low": frozenset()}, baseline=set()
        )
        findings = check_architecture(tmp_path, config=config)
        assert [f.rule for f in findings] == ["ARC001"]
        (f,) = findings
        assert "'low'" in f.message and "'high'" in f.message
        assert f.path.endswith("util.py") and f.line == 1

    def test_baseline_grandfathers_the_edge(self, tmp_path):
        write_mini_tree(
            tmp_path,
            {
                "__init__.py": "",
                "low/__init__.py": "",
                "low/util.py": "from ..high import engine\n",
                "high/__init__.py": "",
                "high/engine.py": "x = 1\n",
            },
        )
        config = ArchConfig(
            allowed={"high": frozenset({"low"}), "low": frozenset()},
            baseline={("low", "high")},
        )
        assert check_architecture(tmp_path, config=config) == []

    def test_import_cycle_reported(self, tmp_path):
        write_mini_tree(
            tmp_path,
            {
                "__init__.py": "",
                "a/__init__.py": "",
                "a/one.py": "from ..b import two\n",
                "b/__init__.py": "",
                "b/two.py": "from ..a import one\n",
            },
        )
        config = ArchConfig(
            allowed={"a": frozenset({"b"}), "b": frozenset({"a"})}, baseline=set()
        )
        findings = check_architecture(tmp_path, config=config)
        assert [f.rule for f in findings] == ["ARC002"]
        assert "a.one -> b.two -> a.one" in findings[0].message

    def test_type_checking_imports_are_not_runtime_edges(self, tmp_path):
        write_mini_tree(
            tmp_path,
            {
                "__init__.py": "",
                "low/__init__.py": "",
                "low/util.py": (
                    "from typing import TYPE_CHECKING\n"
                    "if TYPE_CHECKING:\n"
                    "    from ..high import engine\n"
                ),
                "high/__init__.py": "",
                "high/engine.py": "x = 1\n",
            },
        )
        config = ArchConfig(
            allowed={"high": frozenset({"low"}), "low": frozenset()}, baseline=set()
        )
        assert check_architecture(tmp_path, config=config) == []

    def test_noqa_suppresses_arc001(self, tmp_path):
        write_mini_tree(
            tmp_path,
            {
                "__init__.py": "",
                "low/__init__.py": "",
                "low/util.py": "from ..high import engine  # repro: noqa ARC001\n",
                "high/__init__.py": "",
                "high/engine.py": "x = 1\n",
            },
        )
        config = ArchConfig(
            allowed={"high": frozenset({"low"}), "low": frozenset()}, baseline=set()
        )
        assert check_architecture(tmp_path, config=config) == []
