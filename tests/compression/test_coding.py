"""COO wire coding and byte accounting."""

import numpy as np
import pytest

from repro.compression import (
    HEADER_BYTES,
    INDEX_BYTES,
    VALUE_BYTES,
    SparseTensor,
    dense_nbytes,
    encode_mask,
    encode_sparse,
    sparse_nbytes,
)


class TestEncode:
    def test_roundtrip_identity(self, rng):
        arr = rng.normal(size=(6, 7))
        arr[np.abs(arr) < 0.8] = 0.0
        st = encode_sparse(arr)
        # Wire values are float32 (VALUE_BYTES); roundtrip is exact at f32.
        np.testing.assert_array_equal(st.to_dense(), arr.astype(np.float32))

    def test_nnz(self):
        arr = np.array([0.0, 1.0, 0.0, -2.0])
        st = encode_sparse(arr)
        assert st.nnz == 2
        np.testing.assert_array_equal(st.indices, [1, 3])
        np.testing.assert_array_equal(st.values, [1.0, -2.0])

    def test_encode_mask_selects_positions(self, rng):
        arr = rng.normal(size=10)
        mask = np.zeros(10, dtype=bool)
        mask[[2, 5]] = True
        st = encode_mask(arr, mask)
        assert st.nnz == 2
        np.testing.assert_array_equal(st.values, arr[[2, 5]].astype(np.float32))

    def test_encode_mask_keeps_explicit_zeros(self):
        """A masked-in zero still travels (value 0 at that index)."""
        arr = np.array([0.0, 1.0])
        mask = np.array([True, True])
        st = encode_mask(arr, mask)
        assert st.nnz == 2

    def test_mask_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            encode_mask(rng.normal(size=4), np.ones(5, dtype=bool))

    def test_values_are_copies(self, rng):
        arr = rng.normal(size=5)
        st = encode_sparse(arr)
        arr[:] = 0
        assert np.abs(st.values).sum() > 0


class TestSparseTensor:
    def test_add_into_accumulates(self):
        st = SparseTensor(np.array([0, 2]), np.array([1.0, -1.0]), (4,))
        dest = np.ones(4)
        st.add_into(dest)
        np.testing.assert_allclose(dest, [2.0, 1.0, 0.0, 1.0])

    def test_add_into_shape_mismatch(self):
        st = SparseTensor(np.array([0]), np.array([1.0]), (4,))
        with pytest.raises(ValueError):
            st.add_into(np.zeros(5))

    def test_density(self):
        st = SparseTensor(np.array([0]), np.array([1.0]), (10,))
        assert st.density == pytest.approx(0.1)

    def test_multidim_shape(self, rng):
        arr = rng.normal(size=(3, 4))
        st = encode_sparse(arr)
        assert st.to_dense().shape == (3, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            SparseTensor(np.array([0, 1]), np.array([1.0]), (4,))


class TestByteAccounting:
    def test_sparse_bytes(self):
        assert sparse_nbytes(10) == HEADER_BYTES + 10 * (VALUE_BYTES + INDEX_BYTES)

    def test_dense_bytes(self):
        assert dense_nbytes(100) == HEADER_BYTES + 400

    def test_dense_accepts_shape(self):
        assert dense_nbytes((10, 10)) == dense_nbytes(100)

    def test_sparse_beats_dense_below_half_density(self, rng):
        n = 1000
        assert sparse_nbytes(n // 2 - 10) < dense_nbytes(n)
        assert sparse_nbytes(n // 2 + 10) > dense_nbytes(n)

    def test_tensor_nbytes(self):
        st = SparseTensor(np.arange(5), np.ones(5), (100,))
        assert st.nbytes() == sparse_nbytes(5)
