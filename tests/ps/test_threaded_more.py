"""Additional threaded-trainer coverage: secondary compression, error paths."""

import numpy as np
import pytest

from repro.core import Hyper
from repro.ps import ThreadedTrainer

HYPER = Hyper(lr=0.1, momentum=0.7, ratio=0.1, secondary_ratio=0.1, min_sparse_size=0)


def make(tiny_dataset, tiny_model_factory, **kw):
    defaults = dict(
        num_workers=3, batch_size=16, iterations_per_worker=15, hyper=HYPER, seed=0
    )
    defaults.update(kw)
    return ThreadedTrainer("dgs", tiny_model_factory, tiny_dataset, **defaults)


class TestSecondaryCompression:
    def test_reduces_download_bytes(self, tiny_dataset, tiny_model_factory):
        # Secondary ratio well below the accumulated-difference density —
        # with encode_best already picking bitmap/dense for dense diffs,
        # secondary compression pays off when its ratio is genuinely tighter.
        hyper = Hyper(lr=0.1, momentum=0.7, ratio=0.1, secondary_ratio=0.02, min_sparse_size=0)
        off = make(tiny_dataset, tiny_model_factory, hyper=hyper,
                   secondary_compression=False).run()
        on = make(tiny_dataset, tiny_model_factory, hyper=hyper,
                  secondary_compression=True).run()
        assert on.download_bytes < off.download_bytes
        assert on.final_accuracy > 0.6  # still trains


class TestErrorPropagation:
    def test_worker_exception_surfaces(self, tiny_dataset, tiny_model_factory):
        trainer = make(tiny_dataset, tiny_model_factory)

        def boom(*a, **k):
            raise RuntimeError("injected failure")

        trainer.workers[1].compute_step = boom
        with pytest.raises(RuntimeError, match="worker"):
            trainer.run()


class TestCurveBookkeeping:
    def test_loss_curve_monotone_x(self, tiny_dataset, tiny_model_factory):
        r = make(tiny_dataset, tiny_model_factory).run()
        xs = r.loss_curve.xs
        assert xs == sorted(xs)
        assert len(xs) == 45

    def test_custom_schedule_used(self, tiny_dataset, tiny_model_factory):
        from repro.optim import ConstantLR

        frozen = make(
            tiny_dataset, tiny_model_factory, schedule=ConstantLR(1e-9)
        ).run()
        normal = make(tiny_dataset, tiny_model_factory).run()
        assert frozen.final_loss > normal.final_loss
