"""Benchmark harness plumbing.

Every bench:
 * regenerates one paper table/figure via its ``repro.harness.experiments``
   runner (timed once with ``benchmark.pedantic`` — these are end-to-end
   training campaigns, not micro-benchmarks);
 * prints the rendered table/figure to the real terminal (so
   ``pytest benchmarks/ --benchmark-only | tee ...`` records it);
 * writes the markdown rendering to ``benchmarks/results/<id>.md`` for
   EXPERIMENTS.md.

Set ``REPRO_SCALE=fast`` for a ~2-minute smoke pass; the default full pass
takes ~15–25 minutes single-core.

Every bench also writes a run manifest (``benchmarks/results/runs/<slug>/``,
see ``repro.obs.runs``) summarising the *last* distributed run of the
campaign — inspect with ``python -m repro.obs report|compare|check``.  Set
``REPRO_RUN_MANIFESTS=0`` to disable.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RUNS_DIR = RESULTS_DIR / "runs"


def _manifests_enabled() -> bool:
    return os.environ.get("REPRO_RUN_MANIFESTS", "1") not in ("0", "false", "off")


@pytest.fixture
def run_experiment(benchmark, capsys):
    """Run one experiment module once, print + persist its report."""

    def runner(module, slug: str, **kwargs):
        from repro.exec import collect_results

        with collect_results() as collected:
            report = benchmark.pedantic(module.run, kwargs=kwargs, rounds=1, iterations=1)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{slug}.md").write_text(report.markdown() + "\n")
        (RESULTS_DIR / f"{slug}.txt").write_text(report.render() + "\n")
        for name, svg in report.svgs.items():
            (RESULTS_DIR / f"{slug}_{name}.svg").write_text(svg)
        if _manifests_enabled() and collected:
            from repro.obs import write_run_dir

            # Fixed run_id=slug: regenerating a bench overwrites its manifest,
            # so results/runs/ always mirrors the latest campaign.
            config, result = collected[-1]
            write_run_dir(
                RUNS_DIR,
                result,
                config=config.describe(),
                run_id=slug,
                extra_meta={"bench": slug, "num_runs": len(collected)},
            )
        with capsys.disabled():
            print("\n" + report.render() + "\n")
        return report

    return runner
