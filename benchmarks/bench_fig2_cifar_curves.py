"""Figure 2 — learning curves on synthetic CIFAR-10, 4 workers."""

from repro.harness.experiments import fig2_cifar_curves
from repro.harness.config import is_fast_mode


def test_fig2_cifar_curves(run_experiment):
    report = run_experiment(fig2_cifar_curves, "fig2_cifar_curves")
    if is_fast_mode():
        return  # smoke pass: shape assertions hold at full scale only
    assert len(report.figures) == 2  # accuracy + loss panels
    finals = {row[0]: float(row[1].rstrip("%")) for row in report.rows}
    # Shape: DGS within ~2 points of MSGD (paper: within 0.2).
    assert finals["DGS"] >= finals["MSGD"] - 2.5
