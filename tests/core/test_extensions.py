"""§6 future-work extension strategies."""

from collections import OrderedDict

import numpy as np
import pytest

from repro.compression import QuantizedSparseTensor, TernaryTensor, TopKSparsifier
from repro.core import METHODS, Hyper, build_strategy, get_method
from repro.core.extensions import (
    DGSTernGradStrategy,
    RandomDroppingStrategy,
    TernGradStrategy,
)

SHAPES = OrderedDict([("w", (60,))])


def grads(rng, scale=1.0):
    return OrderedDict([("w", rng.normal(size=60) * scale)])


class TestRegistry:
    def test_extensions_registered(self):
        assert {"terngrad", "random_dropping", "dgs_terngrad"} <= set(METHODS)

    def test_build_via_registry(self):
        h = Hyper(ratio=0.1, momentum=0.7)
        assert isinstance(build_strategy("terngrad", SHAPES, h), TernGradStrategy)
        assert isinstance(build_strategy("random_dropping", SHAPES, h), RandomDroppingStrategy)
        assert isinstance(build_strategy("dgs_terngrad", SHAPES, h), DGSTernGradStrategy)

    def test_spec_fields(self):
        spec = get_method("dgs_terngrad")
        assert spec.downstream == "difference"
        assert spec.momentum == "SAMomentum"


class TestTernGradStrategy:
    def test_payload_is_ternary(self, rng):
        st = TernGradStrategy(SHAPES)
        out = st.prepare(grads(rng), lr=0.1)
        assert isinstance(out["w"], TernaryTensor)
        assert set(np.unique(out["w"].signs)).issubset({-1, 0, 1})

    def test_scale_includes_lr(self, rng):
        g = grads(rng)
        st = TernGradStrategy(SHAPES)
        out = st.prepare(g, lr=0.1)
        # dequantised magnitudes bounded by lr * clipped max |g|
        assert np.abs(out["w"].to_dense()).max() <= 0.1 * np.abs(g["w"]).max() + 1e-12


class TestRandomDropping:
    def test_unbiased_rescale(self, rng):
        st = RandomDroppingStrategy(SHAPES, ratio=0.25)
        g = grads(rng)
        total = np.zeros(60)
        for _ in range(600):
            out = st.prepare(g, lr=1.0)
            total += out["w"].to_dense()
        np.testing.assert_allclose(total / 600, g["w"], atol=0.6)

    def test_count(self, rng):
        st = RandomDroppingStrategy(SHAPES, ratio=0.1)
        out = st.prepare(grads(rng), lr=1.0)
        assert out["w"].nnz == 6


class TestDGSTernGrad:
    def make(self, m=0.7, ratio=0.1):
        return DGSTernGradStrategy(
            OrderedDict(SHAPES), TopKSparsifier(ratio, min_sparse_size=0), momentum=m
        )

    def test_payload_type_and_size(self, rng):
        st = self.make()
        out = st.prepare(grads(rng), lr=0.1)
        assert isinstance(out["w"], QuantizedSparseTensor)
        assert out["w"].nnz == 6
        # 2-bit values: cheaper than float COO of the same nnz
        from repro.compression import sparse_nbytes

        assert out["w"].nbytes() < sparse_nbytes(6)

    def test_error_feedback_keeps_mass(self, rng):
        """Quantisation error stays in u: m·u + sent == velocity pre-send
        for the sent coordinates (first iteration, u0=0)."""
        m = 0.7
        st = self.make(m=m)
        g = grads(rng)
        out = st.prepare(g, lr=1.0)
        velocity = g["w"]  # u after first update, before send
        idx = out["w"].indices
        sent = out["w"].to_dense().reshape(-1)[idx]
        kept = st.u["w"].reshape(-1)[idx]
        np.testing.assert_allclose(sent + kept, velocity[idx], atol=1e-12)

    def test_trains_in_simulation(self, tiny_dataset, tiny_model_factory):
        from repro.sim import ClusterConfig, SimulatedTrainer

        trainer = SimulatedTrainer(
            "dgs_terngrad", tiny_model_factory, tiny_dataset,
            ClusterConfig.with_bandwidth(3, 10, compute_mean_s=0.02),
            batch_size=16, total_iterations=200,
            hyper=Hyper(lr=0.1, momentum=0.7, ratio=0.2, min_sparse_size=0),
            seed=0,
        )
        r = trainer.run()
        assert r.final_accuracy > 0.7

    def test_upload_cheaper_than_dgs(self, tiny_dataset, tiny_model_factory):
        from repro.sim import ClusterConfig, SimulatedTrainer

        def run(method):
            return SimulatedTrainer(
                method, tiny_model_factory, tiny_dataset,
                ClusterConfig.with_bandwidth(2, 10, compute_mean_s=0.02),
                batch_size=16, total_iterations=40,
                hyper=Hyper(lr=0.1, momentum=0.7, ratio=0.2, min_sparse_size=0),
                seed=0,
            ).run()

        assert run("dgs_terngrad").upload_bytes < run("dgs").upload_bytes


class TestQSGDStrategy:
    def test_payload_and_training(self, tiny_dataset, tiny_model_factory):
        from repro.compression.qsgd import QSGDTensor
        from repro.core.extensions import QSGDStrategy

        st = QSGDStrategy({"w": (60,)})
        out = st.prepare(OrderedDict([("w", np.random.default_rng(0).normal(size=60))]), 0.1)
        assert isinstance(out["w"], QSGDTensor)

    def test_registered(self):
        assert "qsgd" in METHODS
        assert get_method("qsgd").downstream == "model"
