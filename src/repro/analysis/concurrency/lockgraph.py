"""LCK004–LCK005 — the whole-program lock-acquisition graph.

The per-class checker (:mod:`repro.analysis.locks`) proves discipline
*within* one lock owner; this module analyses lock nesting *across*
objects, which is where the sharded-PS / multi-shard world can deadlock:

* **nodes** are lock-owning classes — discovered by the ``self._lock``
  convention (:func:`repro.analysis.locks.find_lock_classes`) plus the
  explicit :data:`~repro.analysis.concurrency.registry.LOCK_CLASS_REGISTRY`
  for classes whose lock has another name;
* **edges** mean "a method of X can call into a lock-acquiring method of Y
  while holding X's lock", resolved through the intra-package call graph:
  attribute types are inferred from ``__init__`` assignments and
  annotations, and calls are followed through same-class methods, helper
  objects, and module-level functions (argument and annotation types bind
  function parameters).

Findings:

* **LCK004** — a cycle in the graph: two (or more) classes can acquire
  each other's locks in opposite orders, the classic ABBA deadlock.  One
  finding per cycle, anchored at one of its edges.
* **LCK005** — a channel operation (``send``/``recv``/``send_bytes``/
  ``recv_bytes``) reachable while a lock is held: a blocking wire call
  under a lock stalls every other thread contending for it.

Both rules honour ``# repro: noqa`` on the line of the offending call.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from ..findings import Finding, filter_suppressed
from ..linter import ModuleInfo, iter_python_files, load_module
from ..locks import find_lock_classes
from .registry import LOCK_CLASS_REGISTRY

__all__ = [
    "BLOCKING_METHODS",
    "LockEdge",
    "LockGraph",
    "build_lock_graph",
    "check_lock_graph",
]

#: callee names treated as potentially blocking channel operations
BLOCKING_METHODS = frozenset({"send", "recv", "send_bytes", "recv_bytes"})


def _self_attr(node: ast.expr) -> "str | None":
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _module_name(relpath: str) -> str:
    """``ps/server.py`` → ``ps.server``; ``comm/__init__.py`` → ``comm``."""
    parts = Path(relpath).with_suffix("").parts
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _annotation_type_names(node: "ast.expr | None") -> "set[str]":
    """Candidate class names in an annotation (``"Ledger | None"`` → Ledger)."""
    names: set[str] = set()
    if node is None:
        return names
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return names
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id not in ("None", "Optional", "Union"):
            names.add(sub.id)
    return names


@dataclass(frozen=True)
class _Site:
    """One call or property-read site inside a method/function body."""

    kind: str  #: ``self`` | ``attr`` | ``name`` | ``func`` | ``prop``
    receiver: "str | None"  #: attr/param/alias name (None for ``func``)
    method: str  #: called method / function / property name
    node: ast.AST
    under: bool  #: lexically under the owning class's lock


@dataclass
class _MethodFacts:
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    sites: "list[_Site]" = field(default_factory=list)
    acquires: bool = False


@dataclass
class _ClassFacts:
    module: str
    name: str
    node: ast.ClassDef
    lock_attr: "str | None"
    methods: "dict[str, _MethodFacts]" = field(default_factory=dict)
    properties: "set[str]" = field(default_factory=set)
    #: attr name → candidate type names (bare identifiers)
    attr_types: "dict[str, set[str]]" = field(default_factory=dict)

    @property
    def qualname(self) -> str:
        return f"{self.module}.{self.name}" if self.module else self.name


@dataclass
class _FunctionFacts:
    module: str
    name: str
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    params: "list[str]" = field(default_factory=list)
    ann_types: "dict[str, set[str]]" = field(default_factory=dict)
    sites: "list[_Site]" = field(default_factory=list)


@dataclass(frozen=True)
class LockEdge:
    """``src`` can acquire ``dst``'s lock while holding its own."""

    src: str  #: qualified class name
    dst: str
    path: str
    line: int
    col: int
    via: str  #: human description of the call chain step


@dataclass
class LockGraph:
    """The extracted whole-program lock-acquisition graph."""

    nodes: "dict[str, tuple[str, str]]"  #: qualname → (path, lock attr)
    edges: "list[LockEdge]"
    blocking: "list[Finding]"  #: raw LCK005 findings (pre-suppression)

    def cycles(self) -> "list[list[str]]":
        """Strongly connected components with ≥ 2 nodes, sorted."""
        adj: dict[str, set[str]] = {n: set() for n in self.nodes}
        for e in self.edges:
            adj.setdefault(e.src, set()).add(e.dst)
            adj.setdefault(e.dst, set())
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        onstack: set[str] = set()
        stack: list[str] = []
        out: list[list[str]] = []
        counter = [0]

        def strong(v: str) -> None:
            work = [(v, iter(sorted(adj[v])))]
            index[v] = low[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            onstack.add(v)
            while work:
                node, it = work[-1]
                advanced = False
                for w in it:
                    if w not in index:
                        index[w] = low[w] = counter[0]
                        counter[0] += 1
                        stack.append(w)
                        onstack.add(w)
                        work.append((w, iter(sorted(adj[w]))))
                        advanced = True
                        break
                    if w in onstack:
                        low[node] = min(low[node], index[w])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    scc = []
                    while True:
                        w = stack.pop()
                        onstack.discard(w)
                        scc.append(w)
                        if w == node:
                            break
                    if len(scc) > 1:
                        out.append(sorted(scc))

        for v in sorted(adj):
            if v not in index:
                strong(v)
        return sorted(out)


class _Program:
    """Parsed whole-tree facts: classes, functions, imports."""

    def __init__(self, root: "str | Path", paths: "Sequence[str | Path] | None" = None) -> None:
        self.root = Path(root)
        self.root_pkg = self.root.name
        self.modules: "dict[str, ModuleInfo]" = {}
        self.classes: "dict[tuple[str, str], _ClassFacts]" = {}
        self.classes_by_name: "dict[str, list[tuple[str, str]]]" = {}
        self.functions: "dict[tuple[str, str], _FunctionFacts]" = {}
        #: per module: bound name → (target module, symbol | None)
        self.imports: "dict[str, dict[str, tuple[str, str | None]]]" = {}
        targets = (
            [Path(p) for p in paths] if paths is not None else list(iter_python_files(root))
        )
        for path in targets:
            try:
                module = load_module(path, root=root)
            except SyntaxError:
                continue  # the lint pillar reports PAR001
            self._index_module(module)

    # -- indexing ------------------------------------------------------
    def _index_module(self, module: ModuleInfo) -> None:
        mod = _module_name(module.relpath)
        self.modules[mod] = module
        self.imports[mod] = self._collect_imports(module, mod)
        lock_attrs = {cls.name: attr for cls, attr in find_lock_classes(module.tree)}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                attr = lock_attrs.get(node.name)
                if attr is None:
                    for entry in LOCK_CLASS_REGISTRY:
                        if entry.module == mod and entry.cls == node.name:
                            attr = entry.lock_attr
                            break
                facts = self._analyze_class(mod, node, attr)
                self.classes[(mod, node.name)] = facts
                self.classes_by_name.setdefault(node.name, []).append((mod, node.name))
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[(mod, node.name)] = self._analyze_function(mod, node)

    def _collect_imports(self, module: ModuleInfo, mod: str) -> "dict[str, tuple[str, str | None]]":
        bound: dict[str, tuple[str, str | None]] = {}
        pkg = mod if (self.root / Path(*mod.split("."))).is_dir() else mod.rpartition(".")[0]
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                if node.level:
                    base = pkg.split(".") if pkg else []
                    for _ in range(node.level - 1):
                        if base:
                            base.pop()
                    target = ".".join(base + (node.module.split(".") if node.module else []))
                elif node.module and node.module.split(".")[0] == self.root_pkg:
                    target = ".".join(node.module.split(".")[1:])
                else:
                    continue
                for alias in node.names:
                    # module vs symbol is disambiguated lazily at resolve time
                    bound[alias.asname or alias.name] = (target, alias.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    parts = alias.name.split(".")
                    if parts[0] == self.root_pkg:
                        bound[alias.asname or parts[-1]] = (".".join(parts[1:]), None)
        return bound

    # -- per-class / per-function analysis -----------------------------
    def _analyze_class(self, mod: str, cls: ast.ClassDef, lock_attr: "str | None") -> _ClassFacts:
        facts = _ClassFacts(module=mod, name=cls.name, node=cls, lock_attr=lock_attr)
        fns = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        facts.properties = {
            name
            for name, fn in fns.items()
            if any(isinstance(d, ast.Name) and d.id == "property" for d in fn.decorator_list)
        }
        for name, fn in fns.items():
            self._infer_attr_types(facts, fn)
            if name != "__init__":
                facts.methods[name] = self._collect_sites(fn, lock_attr)
        return facts

    def _infer_attr_types(self, facts: _ClassFacts, fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> None:
        ann = {
            a.arg: _annotation_type_names(a.annotation)
            for a in fn.args.args + fn.args.kwonlyargs
            if a.annotation is not None
        }
        for node in ast.walk(fn):
            attr: "str | None" = None
            value: "ast.expr | None" = None
            names: set[str] = set()
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                attr = _self_attr(node.targets[0])
                value = node.value
            elif isinstance(node, ast.AnnAssign):
                attr = _self_attr(node.target)
                value = node.value
                names |= _annotation_type_names(node.annotation)
            if attr is None:
                continue
            if isinstance(value, ast.Call):
                f = value.func
                if isinstance(f, ast.Name):
                    names.add(f.id)
                elif isinstance(f, ast.Attribute):
                    names.add(f.attr)
            elif isinstance(value, ast.Name):
                names |= ann.get(value.id, set())
            if names:
                facts.attr_types.setdefault(attr, set()).update(names)

    def _analyze_function(self, mod: str, fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> _FunctionFacts:
        facts = _FunctionFacts(module=mod, name=fn.name, node=fn)
        facts.params = [a.arg for a in fn.args.args + fn.args.kwonlyargs]
        facts.ann_types = {
            a.arg: _annotation_type_names(a.annotation)
            for a in fn.args.args + fn.args.kwonlyargs
            if a.annotation is not None
        }
        method = self._collect_sites(fn, None)
        facts.sites = method.sites
        return facts

    def _collect_sites(
        self, fn: "ast.FunctionDef | ast.AsyncFunctionDef", lock_attr: "str | None"
    ) -> _MethodFacts:
        facts = _MethodFacts(node=fn)

        def is_lock_with(node: ast.With) -> bool:
            return lock_attr is not None and any(
                _self_attr(item.context_expr) == lock_attr for item in node.items
            )

        def bare_lock_call(stmt: ast.stmt, op: str) -> bool:
            node = stmt.value if isinstance(stmt, (ast.Expr, ast.Assign)) else None
            return (
                lock_attr is not None
                and isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == op
                and _self_attr(node.func.value) == lock_attr
            )

        def record_call(call: ast.Call, under: bool) -> None:
            f = call.func
            if isinstance(f, ast.Attribute):
                base = f.value
                if isinstance(base, ast.Name):
                    if base.id == "self":
                        facts.sites.append(_Site("self", None, f.attr, call, under))
                    else:
                        facts.sites.append(_Site("name", base.id, f.attr, call, under))
                    return
                attr = _self_attr(base)
                if attr is None and isinstance(base, (ast.Attribute, ast.Subscript)):
                    probe: ast.expr = base
                    while isinstance(probe, (ast.Attribute, ast.Subscript)):
                        found = _self_attr(probe)
                        if found is not None:
                            attr = found
                            break
                        probe = probe.value
                if attr is not None:
                    facts.sites.append(_Site("attr", attr, f.attr, call, under))
                return
            if isinstance(f, ast.Name):
                facts.sites.append(_Site("func", None, f.id, call, under))

        def visit(node: ast.AST, under: bool) -> None:
            if isinstance(node, ast.With) and is_lock_with(node):
                facts.acquires = True
                for item in node.items:
                    visit(item, under)
                visit_block(node.body, True)
                return
            if isinstance(node, ast.Call):
                record_call(node, under)
                for child in ast.iter_child_nodes(node):
                    if child is not node.func or not isinstance(child, ast.Attribute):
                        visit(child, under)
                    else:
                        visit(child.value, under)
                return
            if isinstance(node, ast.Attribute):
                attr = _self_attr(node.value)
                if attr is not None:
                    facts.sites.append(_Site("prop", attr, node.attr, node, under))
                    return
            for child in ast.iter_child_nodes(node):
                visit(child, under)

        def visit_stmt(stmt: ast.stmt, under: bool) -> bool:
            if bare_lock_call(stmt, "acquire"):
                facts.acquires = True
                return True
            if bare_lock_call(stmt, "release"):
                return False
            if isinstance(stmt, ast.Try):
                after = visit_block(stmt.body, under)
                for handler in stmt.handlers:
                    visit_block(handler.body, under)
                visit_block(stmt.orelse, after)
                return visit_block(stmt.finalbody, after)
            if isinstance(stmt, (ast.If, ast.While)):
                visit(stmt.test, under)
                visit_block(stmt.body, under)
                visit_block(stmt.orelse, under)
                return under
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                visit(stmt.target, under)
                visit(stmt.iter, under)
                visit_block(stmt.body, under)
                visit_block(stmt.orelse, under)
                return under
            visit(stmt, under)
            return under

        def visit_block(stmts: "Sequence[ast.stmt]", under: bool) -> bool:
            for stmt in stmts:
                under = visit_stmt(stmt, under)
            return under

        visit_block(fn.body, False)
        return facts

    # -- resolution ----------------------------------------------------
    def resolve_class(self, mod: str, name: str) -> "_ClassFacts | None":
        facts = self.classes.get((mod, name))
        if facts is not None:
            return facts
        target = self.imports.get(mod, {}).get(name)
        if target is not None:
            tmod, sym = target
            if sym is not None:
                facts = self.classes.get((tmod, sym))
                if facts is not None:
                    return facts
        keys = self.classes_by_name.get(name, [])
        if len(keys) == 1:
            return self.classes[keys[0]]
        return None

    def resolve_function(self, mod: str, name: str) -> "_FunctionFacts | None":
        facts = self.functions.get((mod, name))
        if facts is not None:
            return facts
        target = self.imports.get(mod, {}).get(name)
        if target is not None:
            tmod, sym = target
            if sym is not None:
                return self.functions.get((tmod, sym))
        return None

    def module_of_alias(self, mod: str, alias: str) -> "str | None":
        target = self.imports.get(mod, {}).get(alias)
        if target is None:
            return None
        tmod, sym = target
        if sym is None:
            return tmod
        candidate = f"{tmod}.{sym}" if tmod else sym
        return candidate if candidate in self.modules else None


class _GraphBuilder:
    """Expands under-lock call sites into cross-class lock edges."""

    def __init__(self, program: _Program) -> None:
        self.program = program
        self.edges: "dict[tuple[str, str, str, int, int], LockEdge]" = {}
        self.blocking: "dict[tuple[str, int, int, str], Finding]" = {}
        self._may_acquire: "dict[tuple[str, str], dict[str, bool]]" = {}

    # -- per-class may-acquire closure ---------------------------------
    def may_acquire(self, cls: _ClassFacts, method: str) -> bool:
        if cls.lock_attr is None:
            return False
        key = (cls.module, cls.name)
        closure = self._may_acquire.get(key)
        if closure is None:
            closure = {name: facts.acquires for name, facts in cls.methods.items()}
            changed = True
            while changed:
                changed = False
                for name, facts in cls.methods.items():
                    if closure.get(name):
                        continue
                    for site in facts.sites:
                        if site.kind == "self" and closure.get(site.method):
                            closure[name] = True
                            changed = True
                            break
            self._may_acquire[key] = closure
        # unknown methods (inherited, dynamic) are conservatively acquirers
        return closure.get(method, True)

    # -- expansion -----------------------------------------------------
    def build(self) -> None:
        for cls in self.program.classes.values():
            if cls.lock_attr is None:
                continue
            for mname, mfacts in cls.methods.items():
                seeds = [s for s in mfacts.sites if s.under]
                if not seeds:
                    continue
                visited: set = set()
                via = f"{cls.name}.{mname}"
                for site in seeds:
                    self._handle_site(cls, cls, site, None, via, visited)

    def _handle_site(
        self,
        origin: _ClassFacts,
        owner: "_ClassFacts | _FunctionFacts",
        site: _Site,
        env: "dict[str, set[str]] | None",
        via: str,
        visited: set,
    ) -> None:
        program = self.program
        if site.kind == "self" and isinstance(owner, _ClassFacts):
            target = owner.methods.get(site.method)
            if target is not None:
                self._expand_method(origin, owner, site.method, via, visited)
            return
        if site.kind == "func":
            self._handle_callable(origin, owner, site, env, via, visited)
            return
        if site.kind == "name" and isinstance(owner, _ClassFacts):
            alias_mod = program.module_of_alias(owner.module, site.receiver or "")
            if alias_mod is not None:
                fn = program.functions.get((alias_mod, site.method))
                if fn is not None:
                    self._expand_function(origin, fn, {}, via, visited)
                    return
            if site.method in BLOCKING_METHODS:
                self._flag_blocking(origin, owner.module, site, via)
            return
        # attr / prop / name-in-function: a receiver with candidate types
        types = self._receiver_types(owner, site, env)
        resolved: list[_ClassFacts] = []
        mod = owner.module
        for tname in sorted(types):
            target = program.resolve_class(mod, tname)
            if target is not None and target is not origin:
                resolved.append(target)
        if site.kind == "prop":
            for target in resolved:
                if (
                    target.lock_attr is not None
                    and site.method in target.properties
                    and self.may_acquire(target, site.method)
                ):
                    self._add_edge(origin, target, site, via, mod)
            return
        if site.method in BLOCKING_METHODS:
            self._flag_blocking(origin, mod, site, via)
            return
        for target in resolved:
            if target.lock_attr is not None and self.may_acquire(target, site.method):
                self._add_edge(origin, target, site, via, mod)
            target_method = target.methods.get(site.method)
            if target_method is not None:
                self._expand_method(origin, target, site.method, via, visited)
        return

    def _handle_callable(
        self,
        origin: _ClassFacts,
        owner: "_ClassFacts | _FunctionFacts",
        site: _Site,
        env: "dict[str, set[str]] | None",
        via: str,
        visited: set,
    ) -> None:
        program = self.program
        mod = owner.module
        # constructor calls never run under the callee's own lock
        if program.resolve_class(mod, site.method) is not None:
            return
        fn = program.resolve_function(mod, site.method)
        if fn is None:
            return
        call = site.node
        bound: dict[str, set[str]] = {}
        if isinstance(call, ast.Call):
            for param, arg in zip(fn.params, call.args):
                bound[param] = self._expr_types(owner, arg, env)
            for kw in call.keywords:
                if kw.arg is not None and kw.arg in fn.params:
                    bound[kw.arg] = self._expr_types(owner, kw.value, env)
        for param, names in fn.ann_types.items():
            bound.setdefault(param, set()).update(names)
        self._expand_function(origin, fn, bound, via, visited)

    def _expand_method(
        self,
        origin: _ClassFacts,
        owner: _ClassFacts,
        method: str,
        via: str,
        visited: set,
    ) -> None:
        key = ("m", owner.module, owner.name, method)
        if key in visited:
            return
        visited.add(key)
        facts = owner.methods.get(method)
        if facts is None:
            return
        step = f"{via} -> {owner.name}.{method}"
        for site in facts.sites:
            self._handle_site(origin, owner, site, None, step, visited)

    def _expand_function(
        self,
        origin: _ClassFacts,
        fn: _FunctionFacts,
        env: "dict[str, set[str]]",
        via: str,
        visited: set,
    ) -> None:
        key = ("f", fn.module, fn.name, tuple(sorted((k, tuple(sorted(v))) for k, v in env.items())))
        if key in visited:
            return
        visited.add(key)
        step = f"{via} -> {fn.name}()"
        for site in fn.sites:
            self._handle_site(origin, fn, site, env, step, visited)

    # -- helpers -------------------------------------------------------
    def _receiver_types(
        self,
        owner: "_ClassFacts | _FunctionFacts",
        site: _Site,
        env: "dict[str, set[str]] | None",
    ) -> "set[str]":
        if site.receiver is None:
            return set()
        if isinstance(owner, _ClassFacts):
            return set(owner.attr_types.get(site.receiver, set()))
        types = set(env.get(site.receiver, set())) if env else set()
        types |= owner.ann_types.get(site.receiver, set())
        return types

    def _expr_types(
        self,
        owner: "_ClassFacts | _FunctionFacts",
        expr: ast.expr,
        env: "dict[str, set[str]] | None",
    ) -> "set[str]":
        attr = _self_attr(expr)
        if attr is not None and isinstance(owner, _ClassFacts):
            return set(owner.attr_types.get(attr, set()))
        if isinstance(expr, ast.Name):
            if env and expr.id in env:
                return set(env[expr.id])
            if isinstance(owner, _FunctionFacts):
                return set(owner.ann_types.get(expr.id, set()))
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            return {expr.func.id}
        return set()

    def _add_edge(
        self, origin: _ClassFacts, target: _ClassFacts, site: _Site, via: str, owner_mod: str
    ) -> None:
        module = self.program.modules.get(owner_mod)
        path = module.path if module is not None else owner_mod
        node = site.node
        key = (origin.qualname, target.qualname, path, node.lineno, node.col_offset)
        self.edges.setdefault(
            key,
            LockEdge(
                src=origin.qualname,
                dst=target.qualname,
                path=path,
                line=node.lineno,
                col=node.col_offset,
                via=f"{via} -> {target.name}.{site.method}",
            ),
        )

    def _flag_blocking(self, origin: _ClassFacts, mod: str, site: _Site, via: str) -> None:
        module = self.program.modules.get(mod)
        path = module.path if module is not None else mod
        node = site.node
        receiver = f"{site.receiver}." if site.receiver else ""
        key = (path, node.lineno, node.col_offset, site.method)
        self.blocking.setdefault(
            key,
            Finding(
                "LCK005",
                path,
                node.lineno,
                f"{via}: {receiver}{site.method}() can block on a channel "
                f"while self.{origin.lock_attr} is held — move wire I/O "
                "outside the locked region",
                node.col_offset,
            ),
        )


def build_lock_graph(
    root: "str | Path", paths: "Sequence[str | Path] | None" = None
) -> LockGraph:
    """Extract the whole-program lock-acquisition graph under ``root``."""
    program = _Program(root, paths=paths)
    builder = _GraphBuilder(program)
    builder.build()
    nodes: dict[str, tuple[str, str]] = {}
    for cls in program.classes.values():
        if cls.lock_attr is not None:
            module = program.modules.get(cls.module)
            nodes[cls.qualname] = (
                module.path if module is not None else cls.module,
                cls.lock_attr,
            )
    edges = sorted(builder.edges.values(), key=lambda e: (e.path, e.line, e.col, e.dst))
    blocking = sorted(builder.blocking.values(), key=lambda f: (f.path, f.line, f.col))
    return LockGraph(nodes=nodes, edges=edges, blocking=blocking)


def _cycle_findings(graph: LockGraph) -> "Iterable[Finding]":
    for scc in graph.cycles():
        members = set(scc)
        cycle_edges = [e for e in graph.edges if e.src in members and e.dst in members]
        if not cycle_edges:
            continue
        anchor = min(cycle_edges, key=lambda e: (e.path, e.line, e.col))
        ring = " -> ".join(scc + [scc[0]])
        yield Finding(
            "LCK004",
            anchor.path,
            anchor.line,
            f"potential ABBA deadlock: lock-acquisition cycle {ring} "
            f"(this edge: {anchor.via})",
            anchor.col,
        )


def check_lock_graph(
    root: "str | Path", paths: "Sequence[str | Path] | None" = None
) -> "list[Finding]":
    """Run the lock-graph pillar (LCK004 + LCK005) over a source tree."""
    program_graph = build_lock_graph(root, paths=paths)
    findings = list(_cycle_findings(program_graph)) + list(program_graph.blocking)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    # apply per-line noqa suppression using the offending module's source
    by_path: dict[str, list[Finding]] = {}
    for f in findings:
        by_path.setdefault(f.path, []).append(f)
    kept: list[Finding] = []
    for path, group in by_path.items():
        try:
            lines = Path(path).read_text().splitlines()
        except OSError:
            kept.extend(group)
            continue
        kept.extend(filter_suppressed(group, lines))
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept
