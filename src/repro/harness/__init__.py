"""Experiment harness: workloads, cluster presets, runners, local baseline."""

from .config import (
    RESNET18_WIRE_BYTES,
    WORKLOADS,
    WorkloadSpec,
    get_workload,
    is_fast_mode,
    paper_cluster,
)
from .local import LocalResult, LocalTrainer
from .runners import DISTRIBUTED_METHODS, run_all_methods, run_distributed, run_msgd
from .sweep import SweepPoint, sweep

__all__ = [
    "WorkloadSpec",
    "WORKLOADS",
    "get_workload",
    "paper_cluster",
    "RESNET18_WIRE_BYTES",
    "is_fast_mode",
    "LocalTrainer",
    "LocalResult",
    "run_distributed",
    "run_msgd",
    "run_all_methods",
    "DISTRIBUTED_METHODS",
    "sweep",
    "SweepPoint",
]
