"""Static and dynamic correctness tooling for the reproduction.

Four pillars (run together by ``python -m repro.analysis``):

* :mod:`repro.analysis.linter` — repo-specific AST lint rules over
  ``src/repro/**`` (RNG plumbing, mutable defaults, bare except, ``__all__``
  consistency, hot-path dtype hygiene, ``Tensor.data`` ownership, noqa
  pragma hygiene);
* :mod:`repro.analysis.locks` — static lock discipline per class
  (LCK001–003, bare-acquire LCK006), plus
  :mod:`repro.analysis.concurrency.lockgraph`, the whole-program
  lock-acquisition graph (ABBA cycles LCK004, lock-held channel I/O
  LCK005), and :mod:`repro.analysis.race` /
  :mod:`repro.analysis.concurrency.runtime`, the dynamic ThreadSanitizer-
  lite and GoodLock-style order-inversion harnesses;
* :mod:`repro.analysis.concurrency.arch` — architecture layering
  (ARC001–002) against the allowed-dependency matrix and the committed
  ``ARCH_baseline.json``;
* :mod:`repro.analysis.sanitize` — opt-in NaN/Inf and dtype-drift hooks
  over autograd ops, optimizer steps and compression codecs
  (``python -m repro run <exp> --sanitize``).

See ``docs/analysis.md`` for rule descriptions and suppression syntax.
"""

from __future__ import annotations

from .findings import Finding
from .linter import LintConfig, Rule, lint_file, lint_tree
from .locks import check_lock_discipline
from .race import (
    CheckedLock,
    GuardedProxy,
    RaceMonitor,
    RaceViolation,
    instrument_object,
    instrument_server,
)
from .sanitize import NumericFault, Sanitizer, sanitize, sanitizer_selfcheck

__all__ = [
    "CheckedLock",
    "Finding",
    "GuardedProxy",
    "LintConfig",
    "NumericFault",
    "RaceMonitor",
    "RaceViolation",
    "Rule",
    "Sanitizer",
    "check_lock_discipline",
    "instrument_object",
    "instrument_server",
    "lint_file",
    "lint_tree",
    "run_analysis",
    "sanitize",
    "sanitizer_selfcheck",
]


def run_analysis(
    root: "str | None" = None,
    lint: bool = True,
    locks: bool = True,
    sanitizer: bool = True,
    arch: bool = True,
    config: "LintConfig | None" = None,
) -> "list[Finding]":
    """Run every enabled pillar over ``root`` (default: the repro package).

    The ``locks`` pillar covers both the per-class discipline checker
    (LCK001–003, LCK006) and the whole-program lock graph (LCK004–005);
    the ``arch`` pillar enforces the layering matrix (ARC001–002).
    """
    from pathlib import Path

    from .concurrency import check_architecture, check_lock_graph

    if root is None:
        root = str(Path(__file__).resolve().parent.parent)
    findings: list[Finding] = []
    if lint:
        findings.extend(lint_tree(root, config=config))
    if locks:
        findings.extend(check_lock_discipline(root))
        findings.extend(check_lock_graph(root))
    if arch:
        findings.extend(check_architecture(root))
    if sanitizer:
        findings.extend(
            Finding("SAN001", "<sanitizer-selfcheck>", 1, problem)
            for problem in sanitizer_selfcheck()
        )
    return findings
