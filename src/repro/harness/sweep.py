"""Grid sweeps over hyper-parameters / cluster settings.

A light utility used by ablation benches and offered to downstream users:
declare axes (any ``Hyper`` field, worker count, bandwidth, method), get
back one result row per grid point.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, fields, replace
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..core.methods import Hyper
from ..sim.engine import SimResult
from .config import WorkloadSpec
from .runners import run_distributed

__all__ = ["SweepPoint", "sweep"]

_HYPER_FIELDS = {f.name for f in fields(Hyper)}
_RUNNER_AXES = {"method", "num_workers", "gbps", "batch_size", "epochs", "seed",
                "secondary_compression", "staleness_damping", "total_iterations"}


@dataclass(frozen=True)
class SweepPoint:
    """One grid point and its simulation result."""

    settings: "Mapping[str, Any]"
    result: SimResult

    def __getitem__(self, key: str) -> Any:
        return self.settings[key]


def sweep(
    workload: WorkloadSpec,
    axes: "Mapping[str, Sequence[Any]]",
    base: "Mapping[str, Any] | None" = None,
    fast: bool | None = None,
    on_point: "Callable[[SweepPoint], None] | None" = None,
) -> list[SweepPoint]:
    """Run the full cartesian grid of ``axes`` over ``workload``.

    Axis names may be ``Hyper`` fields (``ratio``, ``momentum``, …) or
    runner arguments (``method``, ``num_workers``, ``gbps``, ``batch_size``,
    ``epochs``, ``seed``, ``secondary_compression``, ``staleness_damping``,
    ``total_iterations``).  ``base`` provides fixed settings; ``on_point``
    is invoked after each run (progress reporting).
    """
    base = dict(base or {})
    unknown = (set(axes) | set(base)) - _HYPER_FIELDS - _RUNNER_AXES
    if unknown:
        raise ValueError(f"unknown sweep axes: {sorted(unknown)}")

    names = list(axes)
    points: list[SweepPoint] = []
    for combo in itertools.product(*(axes[name] for name in names)):
        settings = {**base, **dict(zip(names, combo))}
        hyper_overrides = {k: v for k, v in settings.items() if k in _HYPER_FIELDS}
        runner_kwargs = {k: v for k, v in settings.items() if k in _RUNNER_AXES}
        method = runner_kwargs.pop("method", "dgs")
        num_workers = runner_kwargs.pop("num_workers", 4)
        hyper = replace(workload.hyper, **hyper_overrides) if hyper_overrides else None
        result = run_distributed(
            method, workload, num_workers, hyper=hyper, fast=fast, **runner_kwargs
        )
        point = SweepPoint(settings={"method": method, "num_workers": num_workers, **settings}, result=result)
        points.append(point)
        if on_point is not None:
            on_point(point)
    return points
