"""Mini-batch loading with per-worker sharding.

Each distributed worker owns a disjoint shard of the training set (as in the
paper's data-parallel setup) and draws shuffled mini-batches from it at its
own pace — the loader is an infinite iterator because asynchronous workers
do not share epoch boundaries.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from .synthetic import Dataset

__all__ = ["BatchIterator", "DataLoader"]


class BatchIterator:
    """Infinite shuffled mini-batch stream over (x, y) arrays.

    ``transform`` (e.g. :class:`repro.data.Augmenter`) is applied to each
    input batch after sampling — the augmentation hook of a standard
    training pipeline.
    """

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray,
        batch_size: int,
        seed: int = 0,
        drop_last: bool = True,
        transform: "Callable[[np.ndarray], np.ndarray] | None" = None,
    ) -> None:
        if len(x) != len(y):
            raise ValueError("x and y length mismatch")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.x = x
        self.y = y
        self.batch_size = min(batch_size, len(x))
        self.drop_last = drop_last
        self.transform = transform
        self._rng = np.random.default_rng(seed)
        self._order = self._rng.permutation(len(x))
        self._pos = 0
        self.epoch = 0
        self.batches_served = 0

    @property
    def batches_per_epoch(self) -> int:
        n = len(self.x)
        return n // self.batch_size if self.drop_last else -(-n // self.batch_size)

    def next_batch(self) -> tuple[np.ndarray, np.ndarray]:
        """Return the next (x, y) mini-batch, reshuffling at epoch end."""
        n = len(self.x)
        if self._pos + self.batch_size > n:
            if not self.drop_last and self._pos < n:
                idx = self._order[self._pos :]
                self._reshuffle()
                self.batches_served += 1
                return self._emit(idx)
            self._reshuffle()
        idx = self._order[self._pos : self._pos + self.batch_size]
        self._pos += self.batch_size
        self.batches_served += 1
        return self._emit(idx)

    def _emit(self, idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        xb = self.x[idx]
        if self.transform is not None:
            xb = self.transform(xb)
        return xb, self.y[idx]

    def _reshuffle(self) -> None:
        self._order = self._rng.permutation(len(self.x))
        self._pos = 0
        self.epoch += 1

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        while True:
            yield self.next_batch()


class DataLoader:
    """Builds per-worker batch iterators over a :class:`Dataset`.

    ``make_transform`` (optional) builds a fresh per-iterator transform —
    each worker gets its own augmentation RNG stream.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int,
        seed: int = 0,
        make_transform: "Callable[[int], Callable[[np.ndarray], np.ndarray]] | None" = None,
    ) -> None:
        self.dataset = dataset
        self.batch_size = batch_size
        self.seed = seed
        self.make_transform = make_transform

    def _transform_for(self, stream_id: int):
        return self.make_transform(stream_id) if self.make_transform is not None else None

    def worker_iterator(self, worker_id: int, num_workers: int) -> BatchIterator:
        """Shard the training set and return worker ``worker_id``'s stream."""
        shard = self.dataset.shard(num_workers, worker_id)
        return BatchIterator(
            shard.x_train,
            shard.y_train,
            self.batch_size,
            seed=self.seed * 1000 + worker_id,
            transform=self._transform_for(worker_id),
        )

    def full_iterator(self) -> BatchIterator:
        """Single-node stream over the whole training set (MSGD baseline)."""
        return BatchIterator(
            self.dataset.x_train,
            self.dataset.y_train,
            self.batch_size,
            seed=self.seed,
            transform=self._transform_for(-1),
        )

    def val_batches(self, batch_size: int | None = None) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Deterministic pass over the validation split."""
        bs = batch_size or max(self.batch_size, 256)
        x, y = self.dataset.x_val, self.dataset.y_val
        for start in range(0, len(x), bs):
            yield x[start : start + bs], y[start : start + bs]
