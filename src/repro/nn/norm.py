"""Batch normalisation (1-D and 2-D) with running statistics."""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from .module import Module, Parameter

__all__ = ["BatchNorm1d", "BatchNorm2d", "LayerNorm", "GroupNorm"]


class _BatchNorm(Module):
    """Shared batchnorm core; subclasses define the reduction axes."""

    _axes: tuple[int, ...] = (0,)

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def _reshape_stats(self, arr: np.ndarray, ndim: int) -> np.ndarray:
        shape = [1] * ndim
        shape[1] = self.num_features
        return arr.reshape(shape)

    def forward(self, x: Tensor) -> Tensor:
        axes = self._axes
        if self.training:
            mean = x.mean(axis=axes, keepdims=True)
            var = ((x - mean) ** 2).mean(axis=axes, keepdims=True)
            # Update running stats (outside the tape).
            m = self.momentum
            n = int(np.prod([x.shape[a] for a in axes]))
            unbias = n / max(n - 1, 1)
            new_mean = (1 - m) * self._buffers["running_mean"] + m * mean.data.reshape(-1)
            new_var = (1 - m) * self._buffers["running_var"] + m * unbias * var.data.reshape(-1)
            self.set_buffer("running_mean", new_mean)
            self.set_buffer("running_var", new_var)
            xhat = (x - mean) / (var + self.eps) ** 0.5
        else:
            mean = Tensor(self._reshape_stats(self._buffers["running_mean"], x.ndim))
            var = Tensor(self._reshape_stats(self._buffers["running_var"], x.ndim))
            xhat = (x - mean) / (var + self.eps) ** 0.5
        stat_shape = [1] * x.ndim
        stat_shape[1] = self.num_features
        w = self.weight.reshape(*stat_shape)
        b = self.bias.reshape(*stat_shape)
        return xhat * w + b


class BatchNorm1d(_BatchNorm):
    """Normalise (N, C) activations over the batch axis."""

    _axes = (0,)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2:
            raise ValueError(f"BatchNorm1d expects (N, C), got shape {x.shape}")
        return super().forward(x)


class BatchNorm2d(_BatchNorm):
    """Normalise (N, C, H, W) activations over batch and spatial axes."""

    _axes = (0, 2, 3)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects (N, C, H, W), got shape {x.shape}")
        return super().forward(x)


class LayerNorm(Module):
    """Normalise over the trailing feature axis — batch-size independent.

    Unlike BatchNorm it carries no running statistics, so it behaves
    identically in train and eval mode and is robust to the tiny per-worker
    batches of high-worker-count experiments.
    """

    def __init__(self, num_features: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.weight = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.num_features:
            raise ValueError(
                f"LayerNorm({self.num_features}) got trailing dim {x.shape[-1]}"
            )
        mean = x.mean(axis=-1, keepdims=True)
        var = ((x - mean) ** 2).mean(axis=-1, keepdims=True)
        xhat = (x - mean) / (var + self.eps) ** 0.5
        return xhat * self.weight + self.bias


class GroupNorm(Module):
    """Normalise (N, C, H, W) within channel groups (Wu & He 2018)."""

    def __init__(self, num_groups: int, num_channels: int, eps: float = 1e-5) -> None:
        super().__init__()
        if num_channels % num_groups != 0:
            raise ValueError(f"{num_channels} channels not divisible by {num_groups} groups")
        self.num_groups = num_groups
        self.num_channels = num_channels
        self.eps = eps
        self.weight = Parameter(np.ones(num_channels))
        self.bias = Parameter(np.zeros(num_channels))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4 or x.shape[1] != self.num_channels:
            raise ValueError(
                f"GroupNorm expects (N, {self.num_channels}, H, W), got {x.shape}"
            )
        n, c, h, w = x.shape
        g = self.num_groups
        grouped = x.reshape(n, g, (c // g) * h * w)
        mean = grouped.mean(axis=2, keepdims=True)
        var = ((grouped - mean) ** 2).mean(axis=2, keepdims=True)
        xhat = ((grouped - mean) / (var + self.eps) ** 0.5).reshape(n, c, h, w)
        return xhat * self.weight.reshape(1, c, 1, 1) + self.bias.reshape(1, c, 1, 1)
