"""Parameter-server substrate: messages, server, workers, trainers.

Three transport-backed trainers share the server/worker core: threaded
(in-process channels), process (OS pipes), and socket (real TCP with
elastic membership and checkpoint/restore — see :mod:`repro.ps.socket`,
:mod:`repro.ps.membership`, :mod:`repro.ps.checkpoint`).
"""

from .checkpoint import load_checkpoint, save_checkpoint
from .codec import decode_message, encode_message
from .membership import WorkerDirectory
from .messages import DiffMessage, GradientMessage, ModelMessage, payload_dense_nbytes, payload_nbytes
from .process import ProcessResult, ProcessTrainer
from .server import ParameterServer
from .sharded import ParameterShard, ShardedParameterServer
from .socket import SocketTrainer
from .threaded import ThreadedResult, ThreadedTrainer
from .worker import WorkerNode

__all__ = [
    "encode_message",
    "decode_message",
    "ProcessTrainer",
    "ProcessResult",
    "GradientMessage",
    "DiffMessage",
    "ModelMessage",
    "payload_nbytes",
    "payload_dense_nbytes",
    "ParameterServer",
    "ParameterShard",
    "ShardedParameterServer",
    "SocketTrainer",
    "WorkerDirectory",
    "WorkerNode",
    "ThreadedTrainer",
    "ThreadedResult",
    "save_checkpoint",
    "load_checkpoint",
]
