"""Property tests for dataset sharding and batch iteration."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import BatchIterator, make_blobs


@given(
    n=st.integers(min_value=8, max_value=300),
    shards=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=60, deadline=None)
def test_shards_partition_training_set(n, shards, seed):
    ds = make_blobs(n_samples=n, num_classes=3, dim=4, seed=seed)
    pieces = [ds.shard(shards, i) for i in range(shards)]
    assert sum(p.n_train for p in pieces) == ds.n_train
    # Union of shard rows equals the full set (compare as sorted bytes).
    stacked = np.vstack([p.x_train for p in pieces])
    a = np.sort(stacked.view([("", stacked.dtype)] * stacked.shape[1]).reshape(-1))
    full = ds.x_train
    b = np.sort(full.view([("", full.dtype)] * full.shape[1]).reshape(-1))
    assert np.array_equal(a, b)


@given(
    n=st.integers(min_value=4, max_value=100),
    bs=st.integers(min_value=1, max_value=40),
    steps=st.integers(min_value=1, max_value=50),
)
@settings(max_examples=60, deadline=None)
def test_batches_always_full_with_drop_last(n, bs, steps):
    x = np.arange(n, dtype=float).reshape(n, 1)
    it = BatchIterator(x, np.zeros(n), batch_size=bs, seed=0, drop_last=True)
    effective = min(bs, n)
    for _ in range(steps):
        xb, yb = it.next_batch()
        assert len(xb) == effective
        assert len(xb) == len(yb)


@given(n=st.integers(min_value=5, max_value=60), bs=st.integers(min_value=1, max_value=20))
@settings(max_examples=40, deadline=None)
def test_one_epoch_sees_each_sample_once(n, bs):
    x = np.arange(n, dtype=float).reshape(n, 1)
    it = BatchIterator(x, np.zeros(n), batch_size=bs, seed=3, drop_last=False)
    seen = []
    for _ in range(it.batches_per_epoch):
        xb, _ = it.next_batch()
        seen.extend(xb.reshape(-1).tolist())
    assert sorted(seen) == list(range(n))
