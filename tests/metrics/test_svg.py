"""SVG chart renderer."""

import numpy as np
import pytest

from repro.metrics import Curve
from repro.metrics.svg import render_svg, save_svg


def _curve(ys):
    c = Curve("c")
    for i, y in enumerate(ys):
        c.add(i, y)
    return c


class TestRenderSvg:
    def test_valid_document(self):
        out = render_svg({"loss": _curve([3, 2, 1])}, title="T", xlabel="x", ylabel="y")
        assert out.startswith("<svg")
        assert out.rstrip().endswith("</svg>")
        assert "<polyline" in out
        assert "T" in out

    def test_legend_entries(self):
        out = render_svg({"a": _curve([1, 2]), "b": _curve([2, 1])})
        assert ">a</text>" in out and ">b</text>" in out

    def test_multiple_series_distinct_colors(self):
        out = render_svg({"a": _curve([1, 2]), "b": _curve([2, 1])})
        assert out.count("#1f77b4") >= 2  # line + legend swatch
        assert "#d62728" in out

    def test_empty(self):
        assert "(no data)" in render_svg({})

    def test_log_scale_drops_nonpositive(self):
        out = render_svg({"l": _curve([10.0, 1.0, 0.0, 0.1])}, logy=True, ylabel="loss")
        assert "log10(loss)" in out

    def test_tuple_input(self):
        out = render_svg({"s": ([0, 1], [5, 6])})
        assert "<polyline" in out

    def test_constant_series(self):
        out = render_svg({"c": _curve([1, 1, 1])})
        assert "<polyline" in out

    def test_save(self, tmp_path):
        path = tmp_path / "fig.svg"
        save_svg(path, {"x": _curve([1, 2, 3])}, title="saved")
        content = path.read_text()
        assert content.startswith("<svg") and "saved" in content
