"""Property tests for the DGC strategy (momentum correction + masking)."""

from collections import OrderedDict

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strategies import DGCStrategy

N = 16

grad_seqs = st.lists(
    st.lists(
        st.floats(min_value=-5, max_value=5, allow_nan=False, width=64),
        min_size=N, max_size=N,
    ),
    min_size=1, max_size=10,
)
ratios = st.floats(min_value=0.05, max_value=1.0)
momenta = st.floats(min_value=0.0, max_value=0.95)


def make(ratio, m, clip=None):
    return DGCStrategy(
        OrderedDict([("w", (N,))]), ratio=ratio, momentum=m, ramp=None,
        clip_norm=clip, min_sparse_size=0,
    )


@given(grads=grad_seqs, ratio=ratios, m=momenta)
@settings(max_examples=80, deadline=None)
def test_factor_masking_invariant(grads, ratio, m):
    """After every prepare, u and v are zero exactly at the sent coords."""
    strat = make(ratio, m)
    for g in grads:
        out = strat.prepare(OrderedDict([("w", np.asarray(g))]), 0.1)
        idx = out["w"].indices
        assert (strat.u["w"][idx] == 0).all()
        assert (strat.v["w"][idx] == 0).all()


@given(grads=grad_seqs, ratio=ratios)
@settings(max_examples=60, deadline=None)
def test_zero_momentum_dgc_equals_gradient_dropping(grads, ratio):
    """With m=0 (and no clip/ramp), DGC degenerates to Algorithm 1."""
    from repro.compression import TopKSparsifier
    from repro.core.strategies import GradientDroppingStrategy

    dgc = make(ratio, 0.0)
    gd = GradientDroppingStrategy(
        OrderedDict([("w", (N,))]), TopKSparsifier(ratio, min_sparse_size=0)
    )
    for g in grads:
        g = np.asarray(g)
        a = dgc.prepare(OrderedDict([("w", g)]), 0.1)["w"].to_dense()
        b = gd.prepare(OrderedDict([("w", g)]), 0.1)["w"].to_dense()
        np.testing.assert_allclose(a, b, atol=1e-12)


@given(grads=grad_seqs, clip=st.floats(min_value=0.01, max_value=10.0))
@settings(max_examples=60, deadline=None)
def test_clipping_bounds_injected_mass(grads, clip):
    """Each iteration injects at most lr·clip of gradient norm into v."""
    strat = make(1.0, 0.0, clip=clip)  # send everything, no momentum
    lr = 0.1
    for g in grads:
        out = strat.prepare(OrderedDict([("w", np.asarray(g))]), lr)
        norm = float(np.linalg.norm(out["w"].to_dense()))
        # Small relative slack: wire values are float32-rounded at encode.
        assert norm <= lr * clip * (1.0 + 1e-6) + 1e-9
