"""Per-rule linter tests against the good/bad fixture modules."""

from __future__ import annotations

from collections import Counter
from pathlib import Path

from repro.analysis.findings import suppressed_rules
from repro.analysis.linter import LintConfig, lint_file
from repro.analysis.rules import default_rules, rule_index

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture config: everything is a hot path, nothing may mutate Tensor.data
FIXTURE_CONFIG = LintConfig(hot_path_prefixes=("",), tensor_mutation_allowed=())


def lint_fixture(name: str):
    return lint_file(FIXTURES / name, default_rules(), config=FIXTURE_CONFIG, root=FIXTURES)


class TestBadFixture:
    def test_exact_finding_counts(self):
        counts = Counter(f.rule for f in lint_fixture("bad_lint.py"))
        assert counts == {
            "RNG001": 1,
            "MUT001": 1,
            "EXC001": 1,
            "EXP001": 1,
            "EXP002": 2,
            "DTY001": 1,
            "TEN001": 1,
        }

    def test_messages_name_the_offender(self):
        findings = {f.rule: f for f in lint_fixture("bad_lint.py") if f.rule != "EXP002"}
        assert "np.random.rand" in findings["RNG001"].message
        assert "Generator" in findings["RNG001"].message
        assert "'values'" in findings["MUT001"].message and "leak" in findings["MUT001"].message
        assert "bare except" in findings["EXC001"].message
        assert "'missing_name'" in findings["EXP001"].message
        assert "np.zeros" in findings["DTY001"].message and "dtype" in findings["DTY001"].message
        assert "Tensor.data" in findings["TEN001"].message

    def test_exp002_lists_both_unexported_functions(self):
        names = sorted(
            f.message.split("'")[1] for f in lint_fixture("bad_lint.py") if f.rule == "EXP002"
        )
        assert names == ["helper", "poke"]

    def test_findings_carry_real_locations(self):
        for f in lint_fixture("bad_lint.py"):
            assert f.line > 0
            assert f.path.endswith("bad_lint.py")


class TestGoodFixture:
    def test_zero_findings(self):
        findings = lint_fixture("good_lint.py")
        assert findings == [], [f.format() for f in findings]

    def test_noqa_is_what_suppresses_the_mutation(self):
        # drop the pragma and TEN001 must fire: the clean result above is
        # the suppression working, not the rule missing the pattern
        source = (FIXTURES / "good_lint.py").read_text()
        assert "# repro: noqa TEN001" in source


class TestCommFixture:
    def test_exact_finding_counts(self):
        counts = Counter(f.rule for f in lint_fixture("bad_comm.py"))
        assert counts == {"COM001": 7}

    def test_messages_point_at_the_channel_layer(self):
        messages = [f.message for f in lint_fixture("bad_comm.py")]
        assert any("'struct'" in m for m in messages)
        assert any("'socket'" in m and "SocketChannel" in m for m in messages)
        assert any("'multiprocessing.connection'" in m for m in messages)
        assert any("'encode_message'" in m and "Channel" in m for m in messages)
        assert any("'decode_message'" in m for m in messages)

    def test_silent_inside_the_channel_layer(self):
        allowed = LintConfig(
            hot_path_prefixes=("",), tensor_mutation_allowed=(), framing_allowed=("",)
        )
        findings = lint_file(
            FIXTURES / "bad_comm.py", default_rules(), config=allowed, root=FIXTURES
        )
        assert not [f for f in findings if f.rule == "COM001"]


class TestObsFixture:
    def test_exact_finding_counts(self):
        counts = Counter(f.rule for f in lint_fixture("bad_obs.py"))
        assert counts == {"OBS001": 5}

    def test_messages_distinguish_the_failure_modes(self):
        messages = [f.message for f in lint_fixture("bad_obs.py") if f.rule == "OBS001"]
        # registered name spelled inline
        assert any("'worker.step'" in m and "constant" in m for m in messages)
        # valid format but unregistered
        assert any("'server.latency_s'" in m and "register it" in m for m in messages)
        # not even dot.separated lowercase
        assert any("'QueueDepth'" in m and "dot.separated" in m for m in messages)

    def test_constant_reference_is_clean(self):
        # the fixture's obs_names.WORKER_APPLY call must produce nothing
        names = [m.split("'")[1] for m in
                 (f.message for f in lint_fixture("bad_obs.py") if f.rule == "OBS001")]
        assert "worker.apply" not in names

    def test_silent_inside_obs(self):
        allowed = LintConfig(
            hot_path_prefixes=("",),
            tensor_mutation_allowed=(),
            telemetry_name_allowed=("",),
        )
        findings = lint_file(
            FIXTURES / "bad_obs.py", default_rules(), config=allowed, root=FIXTURES
        )
        assert not [f for f in findings if f.rule == "OBS001"]

    def test_relative_codec_reexport_not_flagged(self):
        # ps/__init__.py re-exports the codec names via `from .codec import …`;
        # COM001 targets framing, not re-exports
        src = "from .codec import encode_message\n__all__ = ['encode_message']\n"
        path = FIXTURES / "bad_comm.py"  # any path outside framing_allowed
        import ast

        from repro.analysis.linter import ModuleInfo
        from repro.analysis.rules.comm import WireFramingRule

        module = ModuleInfo(
            path=str(path), relpath="ps/__init__.py", source=src,
            tree=ast.parse(src), lines=src.splitlines(),
        )
        assert list(WireFramingRule().check(module, LintConfig())) == []


class TestPerfFixture:
    PERF_CONFIG = LintConfig(
        hot_path_prefixes=("",), tensor_mutation_allowed=(),
        perf_loop_prefixes=("",), perf_loop_allowed=(),
    )

    def lint(self, name: str):
        return lint_file(FIXTURES / name, default_rules(), config=self.PERF_CONFIG, root=FIXTURES)

    def test_exact_finding_counts(self):
        counts = Counter(f.rule for f in self.lint("bad_perf.py"))
        assert counts == {"PERF001": 4}

    def test_messages_point_at_the_arena(self):
        messages = [f.message for f in self.lint("bad_perf.py")]
        assert any("'parameters_of(...)'" in m for m in messages)
        assert any("'gradients_of(...)'" in m for m in messages)
        assert all("LayerArena" in m for m in messages)

    def test_silent_on_the_reference_path(self):
        # core/layerops.py is the dict reference implementation and may loop
        allowed = LintConfig(
            hot_path_prefixes=("",), tensor_mutation_allowed=(),
            perf_loop_prefixes=("",), perf_loop_allowed=("bad_perf.py",),
        )
        findings = lint_file(
            FIXTURES / "bad_perf.py", default_rules(), config=allowed, root=FIXTURES
        )
        assert not [f for f in findings if f.rule == "PERF001"]

    def test_silent_outside_scoped_packages(self):
        # default scoping: only core/, ps/, exec/ are checked
        findings = lint_file(
            FIXTURES / "bad_perf.py", default_rules(), config=LintConfig(), root=FIXTURES
        )
        assert not [f for f in findings if f.rule == "PERF001"]


class TestDecodeLockFixture:
    #: framing allowed so COM001 stays out of the way; decode-lock scope
    #: widened to cover the fixture directory (defaults cover ps/, comm/)
    DECODE_CONFIG = LintConfig(
        hot_path_prefixes=("",), tensor_mutation_allowed=(),
        framing_allowed=("",), decode_lock_prefixes=("",),
    )

    def lint(self, name: str):
        return lint_file(
            FIXTURES / name, default_rules(), config=self.DECODE_CONFIG, root=FIXTURES
        )

    def test_exact_finding_counts(self):
        counts = Counter(f.rule for f in self.lint("bad_decode_lock.py"))
        assert counts == {"PERF002": 4}

    def test_messages_name_the_decoder(self):
        messages = [f.message for f in self.lint("bad_decode_lock.py")]
        assert any("'decode_frame(...)'" in m for m in messages)
        assert any("'decode_message(...)'" in m for m in messages)
        assert all("lock" in m for m in messages)

    def test_decode_outside_the_lock_is_clean(self):
        # the fixture's `clean` method decodes before acquiring — the rule
        # must anchor every finding to a line inside a with-lock body
        source = (FIXTURES / "bad_decode_lock.py").read_text().splitlines()
        for f in self.lint("bad_decode_lock.py"):
            assert "# PERF002" in source[f.line - 1]

    def test_silent_outside_scoped_packages(self):
        # default scoping: only ps/ and comm/ are checked
        cold = LintConfig(
            hot_path_prefixes=("",), tensor_mutation_allowed=(), framing_allowed=("",)
        )
        findings = lint_file(
            FIXTURES / "bad_decode_lock.py", default_rules(), config=cold, root=FIXTURES
        )
        assert not [f for f in findings if f.rule == "PERF002"]


class TestSuppressionSyntax:
    def test_bare_noqa_suppresses_all(self):
        assert suppressed_rules("x = 1  # repro: noqa") == set()

    def test_rule_list(self):
        assert suppressed_rules("x = 1  # repro: noqa TEN001,DTY001") == {"TEN001", "DTY001"}

    def test_no_pragma(self):
        assert suppressed_rules("x = 1  # plain comment") is None


class TestPathScoping:
    def test_dtype_rule_silent_outside_hot_paths(self):
        cold = LintConfig(hot_path_prefixes=("autograd/",), tensor_mutation_allowed=())
        findings = lint_file(FIXTURES / "bad_lint.py", default_rules(), config=cold, root=FIXTURES)
        assert not [f for f in findings if f.rule == "DTY001"]

    def test_tensor_rule_silent_in_allowed_dirs(self):
        allowed = LintConfig(hot_path_prefixes=("",), tensor_mutation_allowed=("",))
        findings = lint_file(
            FIXTURES / "bad_lint.py", default_rules(), config=allowed, root=FIXTURES
        )
        assert not [f for f in findings if f.rule == "TEN001"]


def test_rule_index_is_complete():
    idx = rule_index()
    assert set(idx) == {
        "RNG001",
        "MUT001",
        "EXC001",
        "EXP001",
        "EXP002",
        "EXP003",
        "DTY001",
        "TEN001",
        "COM001",
        "OBS001",
        "PERF001",
        "PERF002",
        "NOQ001",
    }
    for rule_id, cls in idx.items():
        assert cls.id == rule_id
        assert cls.summary
