"""Cross-engine consistency: the same algorithm through different engines.

The threaded, process, and simulated engines share WorkerNode /
ParameterServer / strategies; these tests pin down that the *algorithmic*
state evolution is engine-independent where determinism allows.
"""

import numpy as np
import pytest

from repro.core import Hyper
from repro.data import DataLoader, make_blobs
from repro.nn import MLP
from repro.sim import ClusterConfig, SimulatedTrainer

HYPER = Hyper(lr=0.1, momentum=0.7, ratio=0.1, min_sparse_size=0)


@pytest.fixture(scope="module")
def ds():
    return make_blobs(n_samples=400, num_classes=4, dim=12, sep=2.0, noise=0.9, seed=9)


@pytest.fixture(scope="module")
def factory():
    return lambda: MLP(12, (20,), 4, seed=5)


def sim(ds, factory, n_workers, **kw):
    defaults = dict(
        cluster=ClusterConfig.with_bandwidth(n_workers, 10, compute_mean_s=0.02),
        batch_size=16,
        total_iterations=40 * n_workers,
        hyper=HYPER,
        seed=0,
    )
    defaults.update(kw)
    return SimulatedTrainer("dgs", factory, ds, **defaults)


class TestSingleWorkerDeterminism:
    def test_sim_single_worker_matches_manual_loop(self, ds, factory):
        """With 1 worker there is no scheduling freedom: the simulated run
        must equal a hand-driven compute→handle→apply loop exactly."""
        from repro.core.layerops import layer_shapes, parameters_of
        from repro.core.methods import get_method
        from repro.ps.server import ParameterServer
        from repro.ps.worker import WorkerNode
        from repro.optim.schedules import ConstantLR

        trainer = sim(ds, factory, 1, total_iterations=30)
        result = trainer.run()

        model = factory()
        theta0 = parameters_of(model)
        shapes = layer_shapes(model)
        server = ParameterServer(theta0, 1, downstream="difference")
        loader = DataLoader(ds, 16, seed=0)
        node = WorkerNode(
            0, model, loader.worker_iterator(0, 1),
            get_method("dgs").make_strategy(shapes, HYPER),
            schedule=ConstantLR(HYPER.lr),
        )
        for _ in range(30):
            node.apply_reply(server.handle(node.compute_step()))

        manual = server.global_model()
        simulated = trainer.server.global_model()
        for name in manual:
            np.testing.assert_allclose(manual[name], simulated[name], atol=1e-12)

    def test_engine_loss_sequence_matches(self, ds, factory):
        a = sim(ds, factory, 1, total_iterations=25).run()
        b = sim(ds, factory, 1, total_iterations=25).run()
        np.testing.assert_array_equal(a.loss_vs_step.ys, b.loss_vs_step.ys)


class TestEngineAgreementStatistics:
    def test_threaded_and_sim_reach_similar_accuracy(self, ds, factory):
        """Different interleavings, same algorithm — final quality agrees."""
        from repro.ps import ThreadedTrainer

        s = sim(ds, factory, 3, total_iterations=120).run()
        t = ThreadedTrainer(
            "dgs", factory, ds, num_workers=3, batch_size=16,
            iterations_per_worker=40, hyper=HYPER, seed=0,
        ).run()
        assert abs(s.final_accuracy - t.final_accuracy) < 0.2

    def test_process_engine_agrees(self, ds, factory):
        from repro.ps import ProcessTrainer

        s = sim(ds, factory, 2, total_iterations=60).run()
        p = ProcessTrainer(
            "dgs", factory, ds, num_workers=2, batch_size=16,
            iterations_per_worker=30, hyper=HYPER, seed=0,
        ).run()
        assert abs(s.final_accuracy - p.final_accuracy) < 0.2
        assert p.server_timestamp == s.total_iterations
