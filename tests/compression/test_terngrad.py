"""TernGrad quantiser."""

import numpy as np
import pytest

from repro.compression import TernGradQuantizer


class TestQuantize:
    def test_signs_are_ternary(self, rng):
        q = TernGradQuantizer(seed=0, clip_sigma=None)
        t = q.quantize(rng.normal(size=500))
        assert set(np.unique(t.signs)).issubset({-1, 0, 1})

    def test_scale_is_max_abs(self, rng):
        arr = rng.normal(size=100)
        q = TernGradQuantizer(seed=0, clip_sigma=None)
        t = q.quantize(arr)
        assert t.scale == pytest.approx(np.abs(arr).max())

    def test_unbiased_expectation(self, rng):
        arr = rng.normal(size=50)
        q = TernGradQuantizer(seed=0, clip_sigma=None)
        total = np.zeros_like(arr)
        trials = 600
        for _ in range(trials):
            total += q.dequantize(q.quantize(arr))
        np.testing.assert_allclose(total / trials, arr, atol=0.4)

    def test_zero_input(self):
        q = TernGradQuantizer(seed=0)
        t = q.quantize(np.zeros(10))
        assert t.scale == 0.0
        np.testing.assert_array_equal(t.to_dense(), np.zeros(10))

    def test_shape_restored(self, rng):
        q = TernGradQuantizer(seed=0)
        t = q.quantize(rng.normal(size=(4, 5)))
        assert t.to_dense().shape == (4, 5)

    def test_clipping_bounds_scale(self, rng):
        arr = rng.normal(size=1000)
        arr[0] = 100.0  # outlier
        clipped = TernGradQuantizer(seed=0, clip_sigma=2.5).quantize(arr)
        unclipped = TernGradQuantizer(seed=0, clip_sigma=None).quantize(arr)
        assert clipped.scale < unclipped.scale

    def test_nbytes_2bit(self):
        q = TernGradQuantizer(seed=0)
        t = q.quantize(np.ones(1000))
        from repro.compression import HEADER_BYTES, VALUE_BYTES

        assert t.nbytes() == HEADER_BYTES + VALUE_BYTES + (2000 + 7) // 8
