"""Extension — gap-aware staleness damping (paper ref. [4])."""

from repro.harness.experiments import ablation_staleness
from repro.harness.config import is_fast_mode


def test_ablation_staleness(run_experiment):
    report = run_experiment(ablation_staleness, "ablation_staleness")
    if is_fast_mode():
        return  # smoke pass: shape assertions hold at full scale only
    rows = {(r[0], r[1]): r for r in report.rows}
    acc = lambda m, d: float(rows[(m, d)][2].rstrip("%"))
    # Undamped DGS (SAMomentum is its staleness answer) dominates; damping
    # still trains but pays ~1/(staleness+1) in effective LR at fixed budget.
    assert acc("DGS", "off") > 85.0
    assert acc("ASGD", "on") > 70.0
    assert acc("DGS", "off") > acc("DGS", "on")
