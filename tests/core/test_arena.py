"""LayerArena: layout, aliasing, fused ops, pickling, the buffer switch."""

import pickle
from collections import OrderedDict

import numpy as np
import pytest

from repro.compression import SparseTensor, encode_sparse
from repro.core.arena import LayerArena, make_layer_buffers

SHAPES = OrderedDict([("w", (3, 4)), ("b", (4,)), ("head", (5,))])


def filled(dtype=np.float64, seed=0):
    rng = np.random.default_rng(seed)
    return OrderedDict((n, rng.normal(size=s).astype(dtype)) for n, s in SHAPES.items())


class TestLayout:
    def test_views_alias_flat(self):
        a = LayerArena(SHAPES)
        a["w"][1, 2] = 7.0
        start, _ = a.span("w")
        assert a.flat[start + 1 * 4 + 2] == 7.0
        a.flat[:] = 3.0
        assert (a["b"] == 3.0).all()

    def test_mapping_protocol(self):
        a = LayerArena(SHAPES)
        assert list(a) == ["w", "b", "head"]
        assert len(a) == 3
        assert "b" in a
        assert a["w"].shape == (3, 4)
        assert {n: v.shape for n, v in a.items()} == {n: tuple(s) for n, s in SHAPES.items()}

    def test_spans_cover_flat_contiguously(self):
        a = LayerArena(SHAPES)
        offset = 0
        for name in a:
            s, e = a.span(name)
            assert s == offset and e - s == a[name].size
            offset = e
        assert offset == a.size == 12 + 4 + 5

    def test_default_dtype_is_float32(self):
        assert LayerArena(SHAPES).dtype == np.float32

    def test_same_layout_is_order_sensitive(self):
        a = LayerArena(SHAPES)
        assert a.same_layout(LayerArena(SHAPES))
        reordered = OrderedDict(reversed(list(SHAPES.items())))
        assert not a.same_layout(LayerArena(reordered))

    def test_backing_buffer_size_checked(self):
        with pytest.raises(ValueError):
            LayerArena(SHAPES, _flat=np.zeros(7))


class TestOps:
    def test_from_layers_roundtrip_keeps_dtype(self):
        layers = filled(np.float64)
        a = LayerArena.from_layers(layers)
        assert a.dtype == np.float64  # dtype=None infers, never rounds
        for n in layers:
            np.testing.assert_array_equal(a[n], layers[n])

    def test_clone_is_independent(self):
        a = LayerArena.from_layers(filled())
        b = a.clone()
        b.flat[:] = 0.0
        assert np.abs(a.flat).sum() > 0

    def test_add_fused_matches_per_layer(self):
        a = LayerArena.from_layers(filled(seed=1))
        b = LayerArena.from_layers(filled(seed=2))
        ref = {n: a[n] + 0.5 * b[n] for n in a}
        a.add_(b, 0.5)
        for n in a:
            np.testing.assert_array_equal(a[n], ref[n])

    def test_copy_and_zero(self):
        a = LayerArena.from_layers(filled())
        b = LayerArena(SHAPES, dtype=np.float64)
        b.copy_(a)
        np.testing.assert_array_equal(b.flat, a.flat)
        assert (b.zero_().flat == 0).all()

    def test_add_payload_dense_arena_fused(self):
        a = LayerArena.from_layers(filled(seed=1))
        p = LayerArena.from_layers(filled(seed=2))
        expect = a.flat - p.flat
        a.add_payload(p, scale=-1.0)
        np.testing.assert_array_equal(a.flat, expect)

    def test_add_payload_sparse_scatter(self):
        a = LayerArena(SHAPES, dtype=np.float64)
        vals = filled(seed=3)
        payload = OrderedDict((n, encode_sparse(v)) for n, v in vals.items())
        a.add_payload(payload, scale=-1.0)
        for n in a:
            np.testing.assert_array_equal(a[n], -vals[n].astype(np.float32).astype(np.float64))

    def test_add_payload_plain_dict(self):
        a = LayerArena(SHAPES, dtype=np.float64)
        vals = filled(seed=4)
        a.add_payload(vals)
        for n in a:
            np.testing.assert_array_equal(a[n], vals[n])

    def test_state_dict_roundtrip(self):
        a = LayerArena.from_layers(filled())
        state = a.state_dict()
        b = LayerArena(SHAPES, dtype=a.dtype)
        b.load_state_dict(state)
        np.testing.assert_array_equal(b.flat, a.flat)
        state["w"][:] = 0.0  # state_dict copies — mutating it can't reach b
        assert np.abs(b["w"]).sum() > 0

    def test_pickle_reassembles_views(self):
        a = LayerArena.from_layers(filled())
        b = pickle.loads(pickle.dumps(a))
        np.testing.assert_array_equal(b.flat, a.flat)
        b["w"][0, 0] = 42.0  # views must alias the unpickled flat buffer
        s, _ = b.span("w")
        assert b.flat[s] == 42.0


class TestMakeLayerBuffers:
    def test_arena_mode(self):
        buf = make_layer_buffers(SHAPES, arena=True)
        assert isinstance(buf, LayerArena)
        assert buf.dtype == np.float32

    def test_reference_mode_matches_historical_allocation(self):
        buf = make_layer_buffers(SHAPES, arena=False)
        assert isinstance(buf, OrderedDict)
        assert all(v.dtype == np.float64 and (v == 0).all() for v in buf.values())

    def test_dtype_override(self):
        assert make_layer_buffers(SHAPES, arena=True, dtype=np.float64).dtype == np.float64
        ref = make_layer_buffers(SHAPES, arena=False, dtype=np.float32)
        assert all(v.dtype == np.float32 for v in ref.values())
