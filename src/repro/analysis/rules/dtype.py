"""DTY001 — explicit ``dtype=`` on allocations in hot paths.

NumPy's default dtype is float64; one implicit allocation in the compress →
ship → decompress cycle silently promotes every downstream buffer (dtype
creep) and doubles wire/RSS accounting.  In the hot subpackages
(``autograd/``, ``compression/``, ``ps/``, ``optim/``) every
``np.zeros/ones/empty/full/array`` call must pin its dtype.  ``*_like``
constructors inherit their dtype and are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..linter import LintConfig, ModuleInfo, Rule, numpy_aliases

__all__ = ["MissingDtypeRule"]

_ALLOCATORS = {"zeros", "ones", "empty", "full", "array"}


class MissingDtypeRule(Rule):
    id = "DTY001"
    summary = "np.zeros/ones/empty/full/array in hot paths need explicit dtype="

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
        if not module.is_hot_path(config):
            return
        aliases = numpy_aliases(module.tree)
        if not aliases:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            if not (
                isinstance(fn, ast.Attribute)
                and isinstance(fn.value, ast.Name)
                and fn.value.id in aliases
                and fn.attr in _ALLOCATORS
            ):
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            # np.array(x, <dtype>) — dtype is the second positional argument
            if fn.attr == "array" and len(node.args) >= 2:
                continue
            yield self.finding(
                module,
                node,
                f"np.{fn.attr}(...) without dtype= in hot path; "
                "implicit float64 allocation causes dtype creep",
            )
