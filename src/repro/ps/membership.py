"""Elastic worker membership: the directory behind join/leave frames.

:class:`WorkerDirectory` is the bookkeeping layer between the transport's
control frames (:class:`~repro.comm.frames.ControlFrame`, dispatched by
:meth:`~repro.comm.service.ServerService.control`) and the server's
state transition (:meth:`~repro.ps.server.ParameterServer.
bootstrap_worker` — ``v_k ← M_t``, ``prev(k) ← t`` under the per-shard
lock).  It records who is active, why anyone left (clean leave, crash,
straggler eviction), and the server timestamp each join landed at — the
accounting a :class:`~repro.exec.result.TrainResult` and the tests for
mid-run joins read back.

Lock discipline: :attr:`_members_mu` guards only the directory's own
bookkeeping and is **never held across a server call** — ``register``
runs the server bootstrap (server/shard locks inside) *first* and only
then takes the directory lock, so the two lock classes never nest and the
LCK004 lock graph gains an isolated node.  The lock deliberately is not
named ``_lock``: static discovery comes from this class's
``LOCK_CLASS_REGISTRY`` entry (:mod:`repro.analysis.concurrency.registry`).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from .messages import ModelMessage
    from .server import ParameterServer

__all__ = ["WorkerDirectory"]


class WorkerDirectory:
    """Tracks which workers are registered with a (sharded) server."""

    #: attributes ``self._members_mu`` protects — same contract as the
    #: server's ``__guarded_attrs__`` (read by the static checker and the
    #: dynamic race instrumentation).
    __guarded_attrs__ = ("members", "events")

    def __init__(self, server: "ParameterServer") -> None:
        #: the (possibly sharded) server joins bootstrap against; its own
        #: locks are acquired before — never inside — ``_members_mu``
        self.server = server
        #: worker id → "active" | departure reason ("left"/"crash"/"evicted")
        self.members: "dict[int, str]" = {}
        #: (worker_id, event, server_timestamp) in arrival order
        self.events: "list[tuple[int, str, int]]" = []
        self._members_mu = threading.Lock()

    # ------------------------------------------------------------------
    def register(self, worker_id: int) -> "ModelMessage":
        """Admit ``worker_id``; returns the full-model join reply.

        The server bootstrap (its own lock) runs first; the directory lock
        is taken only afterwards, for bookkeeping — no nesting.
        """
        msg = self.server.bootstrap_worker(worker_id)
        with self._members_mu:
            self.members[worker_id] = "active"
            self.events.append((worker_id, "join", msg.server_timestamp))
        return msg

    def deregister(self, worker_id: int, reason: "str | None" = None) -> None:
        """Record a departure: a clean leave, or ``reason`` ∈ {"crash",
        "evicted"} from the serve loop's failure paths."""
        reason = reason or "left"
        with self._members_mu:
            self.members[worker_id] = reason
            self.events.append((worker_id, reason, -1))

    # ------------------------------------------------------------------
    def active(self) -> "list[int]":
        """Worker ids currently registered and not departed."""
        with self._members_mu:
            return sorted(w for w, state in self.members.items() if state == "active")

    def snapshot(self) -> "dict[str, object]":
        """Copy of the membership history for reports and tests."""
        with self._members_mu:
            return {
                "members": dict(self.members),
                "events": list(self.events),
                "joins": sum(1 for _, e, _t in self.events if e == "join"),
                "leaves": sum(1 for _, e, _t in self.events if e == "left"),
                "crashes": sum(1 for _, e, _t in self.events if e == "crash"),
                "evictions": sum(1 for _, e, _t in self.events if e == "evicted"),
            }

    # ------------------------------------------------------------------
    def register_lock(self, registry, name: str = "ps.membership") -> None:
        """Enroll the directory lock in a lock-order :class:`LockRegistry`
        (see :mod:`repro.analysis.concurrency.runtime`)."""
        registry.attach(self, name, lock_attr="_members_mu")
