"""Backend protocol, registry lookup, and the ambient default."""

import pytest

import repro.exec.backend as backend_mod
from repro.exec import (
    Backend,
    ProcessBackend,
    SimulatedBackend,
    SyncBackend,
    ThreadedBackend,
    default_backend,
    get_backend,
    list_backends,
    register_backend,
    use_backend,
)

BUILTINS = ("threaded", "process", "simulated", "sync")


class TestRegistry:
    def test_builtins_registered(self):
        assert set(BUILTINS) <= set(list_backends())

    @pytest.mark.parametrize(
        "name,cls,clock",
        [
            ("threaded", ThreadedBackend, "wall"),
            ("process", ProcessBackend, "wall"),
            ("simulated", SimulatedBackend, "virtual"),
            ("sync", SyncBackend, "virtual"),
        ],
    )
    def test_get_backend_resolves(self, name, cls, clock):
        backend = get_backend(name)
        assert isinstance(backend, cls)
        assert backend.name == name
        assert backend.clock == clock

    def test_builtins_satisfy_protocol(self):
        for name in BUILTINS:
            assert isinstance(get_backend(name), Backend)

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="simulated"):
            get_backend("quantum")

    def test_instance_passes_through(self):
        backend = get_backend("threaded")
        assert get_backend(backend) is backend

    def test_duplicate_registration_rejected(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "_REGISTRY", dict(backend_mod._REGISTRY))
        with pytest.raises(ValueError, match="already registered"):
            register_backend(ThreadedBackend())

    def test_replace_registration(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "_REGISTRY", dict(backend_mod._REGISTRY))
        replacement = ThreadedBackend()
        assert register_backend(replacement, replace=True) is replacement
        assert get_backend("threaded") is replacement

    def test_custom_backend_immediately_resolvable(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "_REGISTRY", dict(backend_mod._REGISTRY))

        class Custom(ThreadedBackend):
            name = "custom"

        register_backend(Custom())
        assert "custom" in list_backends()
        assert get_backend("custom").clock == "wall"


class TestAmbientDefault:
    def test_default_is_simulated(self):
        assert default_backend() == "simulated"
        assert get_backend(None) is get_backend("simulated")

    def test_use_backend_swaps_and_restores(self):
        with use_backend("threaded") as name:
            assert name == "threaded"
            assert default_backend() == "threaded"
            assert get_backend(None) is get_backend("threaded")
        assert default_backend() == "simulated"

    def test_use_backend_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_backend("sync"):
                raise RuntimeError("boom")
        assert default_backend() == "simulated"

    def test_use_backend_fails_fast_on_unknown(self):
        with pytest.raises(KeyError):
            with use_backend("quantum"):
                pass  # pragma: no cover
        assert default_backend() == "simulated"


class TestMeasureDeclarations:
    def test_measures_are_trainresult_fields(self):
        from dataclasses import fields

        from repro.exec import TrainResult

        known = {f.name for f in fields(TrainResult)}
        for name in BUILTINS:
            unknown = get_backend(name).measures - known
            assert not unknown, f"{name} declares non-existent fields {unknown}"

    def test_wall_backends_do_not_claim_virtual_only_fields(self):
        for name in ("threaded", "process"):
            measures = get_backend(name).measures
            assert "uplink_utilisation" not in measures
            assert "loss_vs_time" not in measures
