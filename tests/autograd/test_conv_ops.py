"""Convolution/pooling ops: im2col correctness, gradients, naive equivalence."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    avg_pool2d,
    col2im,
    conv2d,
    global_avg_pool2d,
    gradcheck,
    im2col,
    max_pool2d,
)


def t(rng, *shape):
    return Tensor(rng.normal(size=shape), requires_grad=True)


def naive_conv2d(x, w, b, stride, pad):
    """Reference loop implementation of cross-correlation."""
    n, c, h, wd = x.shape
    f, _, kh, kw = w.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (wd + 2 * pad - kw) // stride + 1
    out = np.zeros((n, f, oh, ow))
    for ni in range(n):
        for fi in range(f):
            for i in range(oh):
                for j in range(ow):
                    patch = x[ni, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
                    out[ni, fi, i, j] = (patch * w[fi]).sum() + (b[fi] if b is not None else 0.0)
    return out


class TestIm2Col:
    def test_output_shape(self, rng):
        x = rng.normal(size=(2, 3, 5, 5))
        cols, oh, ow = im2col(x, 3, 3, stride=1, pad=0)
        assert (oh, ow) == (3, 3)
        assert cols.shape == (2 * 9, 3 * 9)

    def test_stride_and_pad(self, rng):
        x = rng.normal(size=(1, 2, 6, 6))
        cols, oh, ow = im2col(x, 3, 3, stride=2, pad=1)
        assert (oh, ow) == (3, 3)

    def test_first_patch_content(self, rng):
        x = rng.normal(size=(1, 1, 4, 4))
        cols, _, _ = im2col(x, 2, 2, 1, 0)
        np.testing.assert_allclose(cols[0], x[0, 0, :2, :2].reshape(-1))

    def test_col2im_adjointness(self, rng):
        """col2im is the transpose of im2col: <im2col(x), y> == <x, col2im(y)>."""
        x = rng.normal(size=(2, 3, 5, 5))
        cols, oh, ow = im2col(x, 3, 3, stride=2, pad=1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        back = col2im(y, x.shape, 3, 3, stride=2, pad=1)
        rhs = float((x * back).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestConv2d:
    @pytest.mark.parametrize("stride,pad", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matches_naive(self, rng, stride, pad):
        x = t(rng, 2, 3, 6, 6)
        w = t(rng, 4, 3, 3, 3)
        b = t(rng, 4)
        out = conv2d(x, w, b, stride=stride, pad=pad)
        expected = naive_conv2d(x.data, w.data, b.data, stride, pad)
        np.testing.assert_allclose(out.data, expected, atol=1e-12)

    def test_no_bias(self, rng):
        x, w = t(rng, 1, 2, 4, 4), t(rng, 3, 2, 3, 3)
        out = conv2d(x, w, None, stride=1, pad=0)
        expected = naive_conv2d(x.data, w.data, None, 1, 0)
        np.testing.assert_allclose(out.data, expected, atol=1e-12)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            conv2d(t(rng, 1, 2, 4, 4), t(rng, 3, 5, 3, 3), None)

    def test_gradcheck_all_inputs(self, rng):
        x = t(rng, 2, 2, 5, 5)
        w = t(rng, 3, 2, 3, 3)
        b = t(rng, 3)
        assert gradcheck(
            lambda x, w, b: (conv2d(x, w, b, stride=2, pad=1) ** 2).sum(), [x, w, b], atol=1e-4
        )

    def test_no_tape_without_grad(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 4, 4)))
        w = Tensor(rng.normal(size=(1, 1, 3, 3)))
        out = conv2d(x, w, None)
        assert not out.requires_grad


class TestPooling:
    def test_max_pool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        out = max_pool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_grad_routes_to_max(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        max_pool2d(x, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        np.testing.assert_allclose(x.grad[0, 0], expected)

    def test_max_pool_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(2, 2, 4, 4)) * 5, requires_grad=True)
        assert gradcheck(lambda x: (max_pool2d(x, 2) ** 2).sum(), [x], atol=1e-4)

    def test_avg_pool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        out = avg_pool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_gradcheck(self, rng):
        x = t(rng, 1, 3, 4, 4)
        assert gradcheck(lambda x: (avg_pool2d(x, 2) ** 2).sum(), [x])

    def test_global_avg_pool(self, rng):
        x = t(rng, 2, 3, 4, 4)
        out = global_avg_pool2d(x)
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out.data, x.data.mean(axis=(2, 3)))
        assert gradcheck(lambda x: (global_avg_pool2d(x) ** 2).sum(), [x])
