"""Dense/activation/structural layers."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.nn import Dropout, Flatten, Identity, Linear, ReLU, Sigmoid, Tanh


class TestLinear:
    def test_forward_values(self, rng):
        lin = Linear(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        out = lin(Tensor(x))
        np.testing.assert_allclose(out.data, x @ lin.weight.data.T + lin.bias.data)

    def test_grad_flows_to_params(self, rng):
        lin = Linear(3, 2, rng=rng)
        x = Tensor(rng.normal(size=(4, 3)))
        lin(x).sum().backward()
        assert lin.weight.grad is not None and lin.bias.grad is not None

    def test_gradcheck(self, rng):
        lin = Linear(3, 2, rng=rng)
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        assert gradcheck(lambda x: (lin(x) ** 2).sum(), [x])

    def test_init_scale_shrinks_with_fan_in(self):
        rng = np.random.default_rng(0)
        small = Linear(10, 10, rng=rng).weight.data.std()
        big = Linear(1000, 10, rng=rng).weight.data.std()
        assert big < small

    def test_repr(self):
        assert "Linear(4, 3)" in repr(Linear(4, 3))


class TestActivations:
    @pytest.mark.parametrize("layer,fn", [(ReLU(), lambda x: np.maximum(x, 0)),
                                          (Tanh(), np.tanh),
                                          (Sigmoid(), lambda x: 1 / (1 + np.exp(-x)))])
    def test_values(self, rng, layer, fn):
        x = rng.normal(size=(3, 3))
        np.testing.assert_allclose(layer(Tensor(x)).data, fn(x), atol=1e-12)

    def test_identity(self, rng):
        x = Tensor(rng.normal(size=(2, 2)))
        assert Identity()(x) is x


class TestFlatten:
    def test_flattens_trailing(self, rng):
        x = Tensor(rng.normal(size=(4, 2, 3, 3)))
        assert Flatten()(x).shape == (4, 18)


class TestDropout:
    def test_eval_is_identity(self, rng):
        d = Dropout(0.5, rng=rng)
        d.eval()
        x = Tensor(rng.normal(size=(10, 10)))
        np.testing.assert_array_equal(d(x).data, x.data)

    def test_train_zeroes_and_rescales(self):
        d = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((100, 100)))
        out = d(x).data
        zeros = (out == 0).mean()
        assert 0.4 < zeros < 0.6
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)

    def test_p_zero_is_identity(self, rng):
        d = Dropout(0.0)
        x = Tensor(rng.normal(size=(5, 5)))
        np.testing.assert_array_equal(d(x).data, x.data)

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
