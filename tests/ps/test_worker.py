"""Worker node lifecycle."""

from collections import OrderedDict

import numpy as np
import pytest

from repro.compression import TopKSparsifier, encode_sparse
from repro.core.layerops import layer_shapes, parameters_of
from repro.core.strategies import DenseStrategy, SAMomentumStrategy
from repro.data import BatchIterator, make_blobs
from repro.nn import MLP
from repro.optim import ConstantLR
from repro.ps import DiffMessage, ModelMessage
from repro.ps.worker import WorkerNode


@pytest.fixture
def node():
    ds = make_blobs(n_samples=200, num_classes=3, dim=8, seed=0)
    model = MLP(8, (12,), 3, seed=1)
    batches = BatchIterator(ds.x_train, ds.y_train, 16, seed=0)
    strategy = DenseStrategy(layer_shapes(model))
    return WorkerNode(0, model, batches, strategy, schedule=ConstantLR(0.1))


class TestComputeStep:
    def test_produces_message(self, node):
        msg = node.compute_step()
        assert msg.worker_id == 0
        assert msg.local_iteration == 0
        assert np.isfinite(node.last_loss)

    def test_iteration_counter(self, node):
        node.compute_step()
        node.compute_step()
        assert node.iteration == 2
        assert node.samples_processed == 32

    def test_payload_is_lr_scaled_gradient(self, node):
        msg = node.compute_step()
        # dense strategy: payload = lr * grad; all finite, not all zero
        total = sum(np.abs(v).sum() for v in msg.payload.values())
        assert total > 0

    def test_epoch_progression(self, node):
        per_epoch = node.batches.batches_per_epoch
        for _ in range(per_epoch):
            node.compute_step()
        assert node.epoch == pytest.approx(1.0)


class TestApplyReply:
    def test_diff_reply_adds(self, node):
        before = parameters_of(node.model)
        shapes = layer_shapes(node.model)
        payload = OrderedDict()
        for name, shape in shapes.items():
            delta = np.zeros(shape)
            delta.reshape(-1)[0] = 1.0
            payload[name] = encode_sparse(delta)
        node.apply_reply(DiffMessage(0, payload, 1, 0))
        after = parameters_of(node.model)
        for name in shapes:
            assert after[name].reshape(-1)[0] == pytest.approx(before[name].reshape(-1)[0] + 1.0)

    def test_model_reply_replaces(self, node):
        shapes = layer_shapes(node.model)
        payload = OrderedDict((n, np.full(s, 7.0)) for n, s in shapes.items())
        node.apply_reply(ModelMessage(0, payload, 1, 0))
        for _, p in node.model.named_parameters():
            np.testing.assert_allclose(p.data, 7.0)

    def test_unknown_reply_type(self, node):
        with pytest.raises(TypeError):
            node.apply_reply(object())


class TestState:
    def test_worker_state_bytes_delegates(self, node):
        assert node.worker_state_bytes() == 0  # dense strategy
        shapes = layer_shapes(node.model)
        sam = SAMomentumStrategy(shapes, TopKSparsifier(0.1), 0.7)
        node2 = WorkerNode(1, node.model, node.batches, sam)
        assert node2.worker_state_bytes() == sum(
            int(np.prod(s)) * 8 for s in shapes.values()
        )

    def test_lr_follows_schedule(self, node):
        assert node.current_lr() == 0.1
