"""Table 5 — techniques matrix (generated from the live method registry)."""

from repro.harness.experiments import table5_techniques
from repro.harness.config import is_fast_mode


def test_table5_techniques(run_experiment):
    report = run_experiment(table5_techniques, "table5_techniques")
    if is_fast_mode():
        return  # smoke pass: shape assertions hold at full scale only
    rows = {r[0]: r for r in report.rows}
    assert rows["DGS"][2] == "SAMomentum"
    assert rows["DGS"][3] == "N" and rows["DGS"][4] == "N"
    assert rows["DGC-async"][3] == "Y" and rows["DGC-async"][4] == "Y"
    assert rows["ASGD"][1] == "N"
