"""Loopback smoke test for the comm layer: ``python -m repro.comm``.

Round-trips one frame of every kind — carrying one payload of every codec
type the repo produces — through a real OS pipe via
:class:`~repro.comm.pipe.PipeChannel`, then checks the decoded frames
reconstruct the same dense tensors (at float32 wire precision) and that
close-frame accounting survives intact.  Exits non-zero on any mismatch,
so ``make comm-smoke`` / CI can gate on it.
"""

from __future__ import annotations

import multiprocessing as mp
import sys

import numpy as np

from ..compression.coding import BitmapTensor, DenseTensor, QuantizedSparseTensor, SparseTensor
from ..compression.qsgd import QSGDTensor
from ..compression.terngrad import TernaryTensor
from ..ps.messages import DiffMessage, GradientMessage, ModelMessage
from .frames import CloseFrame, DiffFrame, GradientFrame, ModelFrame
from .pipe import PipeChannel

# float32 wire precision: the codec downcasts every value to f32
_WIRE_TOL = 1e-6


def _payload_zoo() -> "dict[str, object]":
    """One payload of every type a strategy or the server can emit."""
    rng = np.random.default_rng(7)
    shape = (4, 6)
    dense = rng.standard_normal(shape)
    mask = np.abs(dense) > 0.8
    return {
        "topk": SparseTensor(
            np.array([0, 5, 17], dtype=np.int64), np.array([0.5, -1.25, 2.0]), shape
        ),
        "randomk": SparseTensor(
            np.sort(rng.choice(dense.size, size=4, replace=False)).astype(np.int64),
            rng.standard_normal(4),
            shape,
        ),
        "threshold-bitmap": BitmapTensor.from_mask(dense, mask),
        "quantised-sparse": QuantizedSparseTensor(
            np.array([1, 9], dtype=np.int64), np.array([1, -1], dtype=np.int8), 0.75, shape
        ),
        "terngrad": TernaryTensor(
            rng.integers(-1, 2, size=dense.size).astype(np.int8), 0.5, shape
        ),
        "qsgd": QSGDTensor(
            rng.integers(-4, 5, size=dense.size).astype(np.int32), 3.25, 4, shape
        ),
        "dense-fallback": DenseTensor(dense),
        "ndarray": dense,
        "zero-nnz": SparseTensor(
            np.array([], dtype=np.int64), np.array([], dtype=np.float64), shape
        ),
        "scalar-shape": SparseTensor(np.array([0], dtype=np.int64), np.array([3.5]), ()),
    }


def _to_dense(payload: object) -> np.ndarray:
    return payload if isinstance(payload, np.ndarray) else payload.to_dense()


def _check_payload(name: str, sent: object, received: object, failures: "list[str]") -> None:
    a, b = _to_dense(sent), _to_dense(received)
    if a.shape != b.shape:
        failures.append(f"{name}: shape {a.shape} != {b.shape}")
    elif not np.allclose(a, b.astype(np.float64), atol=_WIRE_TOL, rtol=_WIRE_TOL):
        failures.append(f"{name}: values drifted beyond float32 wire precision")


def main() -> int:
    left, right = mp.Pipe(duplex=True)
    sender, receiver = PipeChannel(left), PipeChannel(right)
    failures: "list[str]" = []
    zoo = _payload_zoo()

    for i, (name, payload) in enumerate(zoo.items()):
        sender.send(GradientFrame(GradientMessage(i, {"layer": payload}, i), loss=0.25 * i))
        frame = receiver.recv()
        if not isinstance(frame, GradientFrame):
            failures.append(f"{name}: gradient frame decoded as {type(frame).__name__}")
            continue
        if frame.worker_id != i or abs(frame.loss - 0.25 * i) > 1e-12:
            failures.append(f"{name}: gradient frame header fields drifted")
        _check_payload(f"gradient[{name}]", payload, frame.message.payload["layer"], failures)

    diff_payload = {"layer": zoo["topk"]}
    sender.send(DiffFrame(DiffMessage(3, diff_payload, server_timestamp=42, staleness=2)))
    frame = receiver.recv()
    if isinstance(frame, DiffFrame) and frame.message.staleness == 2:
        _check_payload("diff", zoo["topk"], frame.message.payload["layer"], failures)
    else:
        failures.append("diff frame lost its type or staleness")

    model_payload = {"layer": _to_dense(zoo["ndarray"])}
    sender.send(ModelFrame(ModelMessage(1, model_payload, server_timestamp=7, staleness=0)))
    frame = receiver.recv()
    if isinstance(frame, ModelFrame):
        _check_payload("model", model_payload["layer"], frame.message.payload["layer"], failures)
    else:
        failures.append("model frame lost its type")

    for close in (
        CloseFrame(worker_id=2, samples_processed=640, worker_state_bytes=1 << 20),
        CloseFrame(worker_id=5, samples_processed=32, error="ZeroDivisionError: boom"),
        CloseFrame(worker_id=0),
    ):
        sender.send(close)
        frame = receiver.recv()
        if frame != close:
            failures.append(f"close frame round-trip changed: {close} -> {frame}")

    sender.close()
    receiver.close()

    print(f"comm loopback: {len(zoo)} payload types, {len(zoo) + 5} frames over an OS pipe")
    print(
        f"  wire bytes: {sender.wire_bytes_sent} sent == "
        f"{receiver.wire_bytes_received} received"
    )
    if sender.wire_bytes_sent != receiver.wire_bytes_received:
        failures.append("wire byte counters disagree between the two pipe ends")
    for failure in failures:
        print(f"  FAIL {failure}")
    print("comm loopback: OK" if not failures else f"comm loopback: {len(failures)} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
