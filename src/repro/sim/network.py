"""Network model: bandwidth, latency, and the shared server link.

The paper's testbed bottleneck is the server NIC (10 Gbps, reduced to
1 Gbps in §5.5).  We model each direction of the server link as a shared
FIFO resource: a transfer occupies the link for ``bytes / bandwidth``
seconds after a fixed per-message latency, and concurrent transfers queue.
This is what makes dense ASGD stop scaling — exactly the phenomenon
Figures 5 and 6 report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LinkModel", "SharedLink", "GBPS", "MBPS"]

GBPS = 1e9 / 8  # bytes per second at 1 Gbps
MBPS = 1e6 / 8


@dataclass(frozen=True)
class LinkModel:
    """Point-to-point link parameters."""

    bandwidth_bytes_per_s: float
    latency_s: float = 100e-6  # LAN-scale per-message latency

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("latency must be non-negative")

    def transfer_time(self, nbytes: int) -> float:
        """Serialisation + propagation time for one message."""
        return self.latency_s + nbytes / self.bandwidth_bytes_per_s

    @staticmethod
    def gbps(gbits: float, latency_s: float = 100e-6) -> "LinkModel":
        return LinkModel(gbits * GBPS, latency_s)


@dataclass
class SharedLink:
    """A FIFO-shared link (one direction of the server NIC).

    ``reserve`` must be called in nondecreasing ``ready_time`` order — the
    event-driven engine guarantees this by processing events chronologically.
    """

    model: LinkModel
    free_at: float = 0.0
    busy_time: float = field(default=0.0)
    transfers: int = 0

    def reserve(self, ready_time: float, nbytes: int) -> tuple[float, float]:
        """Queue a transfer that is ready at ``ready_time``; return (start, end)."""
        if ready_time < 0:
            raise ValueError("ready_time must be non-negative")
        start = max(ready_time, self.free_at)
        duration = self.model.transfer_time(nbytes)
        end = start + duration
        self.free_at = end
        self.busy_time += duration
        self.transfers += 1
        return start, end

    def utilisation(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` the link spent busy."""
        return self.busy_time / horizon if horizon > 0 else 0.0
