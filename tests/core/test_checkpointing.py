"""Distributed-state checkpointing: tracker and strategy snapshots."""

from collections import OrderedDict

import numpy as np
import pytest

from repro.compression import TopKSparsifier, encode_sparse
from repro.core import Hyper, get_method
from repro.core.strategies import (
    DGCStrategy,
    GradientDroppingStrategy,
    SAMomentumStrategy,
)
from repro.core.tracker import ModelDifferenceTracker

SHAPES = OrderedDict([("w", (24,)), ("b", (6,))])
HYPER = Hyper(ratio=0.2, momentum=0.7, min_sparse_size=0)


def random_update(rng):
    upd = OrderedDict()
    for n, s in SHAPES.items():
        arr = rng.normal(size=s)
        arr[np.abs(arr) < 0.6] = 0.0
        upd[n] = encode_sparse(arr)
    return upd


class TestTrackerCheckpoint:
    def test_roundtrip_restores_everything(self, rng):
        tr = ModelDifferenceTracker(SHAPES, 2)
        for i in range(6):
            tr.apply_update(random_update(rng))
            if i % 2:
                tr.model_difference(i % 2)
        state = tr.state_dict()

        fresh = ModelDifferenceTracker(SHAPES, 2)
        fresh.load_state_dict(state)
        assert fresh.t == tr.t and fresh.prev == tr.prev
        for n in SHAPES:
            np.testing.assert_array_equal(fresh.M[n], tr.M[n])
            np.testing.assert_array_equal(fresh.v[0][n], tr.v[0][n])

    def test_restored_tracker_continues_identically(self, rng):
        """Same update stream after restore → identical G as uninterrupted."""
        stream = [random_update(np.random.default_rng(100 + i)) for i in range(8)]
        tr_full = ModelDifferenceTracker(SHAPES, 2)
        for upd in stream[:4]:
            tr_full.apply_update(upd)
        tr_full.model_difference(0)
        snapshot = tr_full.state_dict()

        restored = ModelDifferenceTracker(SHAPES, 2)
        restored.load_state_dict(snapshot)
        for upd in stream[4:]:
            tr_full.apply_update(upd)
            restored.apply_update(upd)
        g_full = tr_full.model_difference(1)
        g_rest = restored.model_difference(1)
        for n in SHAPES:
            np.testing.assert_array_equal(g_full[n].to_dense(), g_rest[n].to_dense())

    def test_worker_count_mismatch_rejected(self, rng):
        tr = ModelDifferenceTracker(SHAPES, 2)
        state = tr.state_dict()
        other = ModelDifferenceTracker(SHAPES, 3)
        with pytest.raises(ValueError):
            other.load_state_dict(state)

    def test_npz_persistable(self, rng, tmp_path):
        tr = ModelDifferenceTracker(SHAPES, 1)
        tr.apply_update(random_update(rng))
        path = tmp_path / "server.npz"
        np.savez(path, **tr.state_dict())
        with np.load(path) as data:
            restored = ModelDifferenceTracker(SHAPES, 1)
            restored.load_state_dict(dict(data))
        np.testing.assert_array_equal(restored.M["w"], tr.M["w"])


class TestStrategyCheckpoint:
    @pytest.mark.parametrize("name", ["gd_async", "dgc_async", "dgs"])
    def test_roundtrip_and_identical_continuation(self, name, rng):
        spec = get_method(name)
        a = spec.make_strategy(SHAPES, HYPER)
        grads = [
            OrderedDict((n, np.random.default_rng(50 + i).normal(size=s)) for n, s in SHAPES.items())
            for i in range(8)
        ]
        for g in grads[:4]:
            a.prepare(g, 0.1)
        state = a.state_dict()

        b = spec.make_strategy(SHAPES, HYPER)
        b.load_state_dict(state)
        if hasattr(a, "iteration"):
            b.iteration = a.iteration
        for g in grads[4:]:
            out_a = a.prepare(g, 0.1)
            out_b = b.prepare(g, 0.1)
            for n in SHAPES:
                np.testing.assert_array_equal(out_a[n].to_dense(), out_b[n].to_dense())

    def test_dense_strategy_empty_state(self):
        strat = get_method("asgd").make_strategy(SHAPES, HYPER)
        assert strat.state_dict() == {}
        strat.load_state_dict({})  # no-op, no error

    def test_buffers_are_copies(self, rng):
        strat = SAMomentumStrategy(SHAPES, TopKSparsifier(0.2, min_sparse_size=0), 0.7)
        strat.prepare(OrderedDict((n, rng.normal(size=s)) for n, s in SHAPES.items()), 0.1)
        state = strat.state_dict()
        state["u/w"][...] = 999.0
        assert not np.allclose(strat.u["w"], 999.0)
