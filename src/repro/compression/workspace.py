"""Reusable scratch buffers for the hot compression kernels.

Every DGS iteration runs, per layer: ``|u|`` → ``argpartition`` top-k →
COO encode.  The reference kernels allocate their ``|u|`` magnitude
buffer, boolean mask and index arrays fresh on every call — at 1 M
parameters that is several MB of allocator traffic per iteration per
worker, paid again by the server for every model difference.

:class:`KernelWorkspace` is a small keyed pool of reusable buffers the
kernels draw their *transient* scratch from.  Kernels that accept a
``workspace=`` reuse buffers instead of allocating; passing ``None``
(the default) reproduces the historical allocate-per-call behaviour
bit-for-bit.

Lifetime / ownership rules (see ``docs/performance.md``):

* A workspace is **single-threaded state**: one per worker strategy, one
  per server tracker.  Never share one across threads.
* A buffer returned by :meth:`scratch` — and any kernel *output that
  aliases workspace memory*, such as the mask from
  ``topk_mask(..., workspace=ws)`` — is valid only until the next kernel
  call on the same workspace.  Consume it before selecting the next
  layer.  Kernel outputs that must outlive the call (``SparseTensor``
  values/indices) are always freshly gathered, never aliased.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KernelWorkspace"]


class KernelWorkspace:
    """Keyed pool of reusable 1-D scratch buffers for the hot kernels."""

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: "dict[tuple[str, np.dtype], np.ndarray]" = {}

    def scratch(self, tag: str, size: int, dtype: "np.dtype | type | str") -> np.ndarray:
        """A reusable uninitialised buffer of ``size`` elements.

        One backing buffer per ``(tag, dtype)``, grown geometrically to the
        largest size ever requested (so per-layer calls of varying size —
        different layers, varying nnz — reuse one allocation); the returned
        view's contents are whatever the previous use left behind — callers
        must overwrite before reading.
        """
        key = (tag, np.dtype(dtype))
        n = int(size)
        buf = self._buffers.get(key)
        if buf is None or buf.size < n:
            capacity = n if buf is None else max(n, 2 * buf.size)
            buf = np.empty(capacity, dtype=key[1])
            self._buffers[key] = buf
        return buf[:n]

    def nbytes(self) -> int:
        """Resident scratch memory (for the §5.6.2-style accounting)."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def clear(self) -> None:
        self._buffers.clear()

    def __repr__(self) -> str:
        return f"KernelWorkspace({len(self._buffers)} buffers, {self.nbytes()} bytes)"
