"""From-scratch neural-network library (PyTorch substitute — see DESIGN.md)."""

from .conv import AvgPool2d, Conv2d, GlobalAvgPool2d, MaxPool2d
from .layers import Dropout, Flatten, Identity, Linear, ReLU, Sigmoid, Tanh
from .loss import CrossEntropyLoss, MSELoss, accuracy, cross_entropy
from .module import Module, Parameter, Sequential
from .norm import BatchNorm1d, BatchNorm2d, GroupNorm, LayerNorm
from .serialization import load_checkpoint, save_checkpoint
from .models import MLP, BasicBlock, MicroResNet, SimpleCNN, SmallVGG, micro_resnet18, micro_resnet_imagenet

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "Flatten",
    "Dropout",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "LayerNorm",
    "GroupNorm",
    "save_checkpoint",
    "load_checkpoint",
    "CrossEntropyLoss",
    "MSELoss",
    "cross_entropy",
    "accuracy",
    "MLP",
    "SimpleCNN",
    "SmallVGG",
    "BasicBlock",
    "MicroResNet",
    "micro_resnet18",
    "micro_resnet_imagenet",
]
