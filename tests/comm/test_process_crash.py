"""Process backend crash handling: a dying worker yields a partial result."""

from __future__ import annotations

from repro.core import Hyper
from repro.ps.process import ProcessTrainer

HYPER = Hyper(lr=0.1, momentum=0.7, ratio=0.2, min_sparse_size=0)


def make_trainer(dataset, model_factory, fail_at=None, iters=6):
    return ProcessTrainer(
        "dgs",
        model_factory,
        dataset,
        num_workers=2,
        batch_size=16,
        iterations_per_worker=iters,
        hyper=HYPER,
        seed=0,
        fail_at=fail_at,
    )


def test_worker_hard_crash_yields_partial_result(tiny_dataset, tiny_model_factory):
    """A worker hard-killed mid-run (no close frame) must not hang the run."""
    trainer = make_trainer(tiny_dataset, tiny_model_factory, fail_at={1: 2})
    result = trainer.run()
    assert result.errors, "the crash must surface in TrainResult.errors"
    assert any("without a close frame" in e for e in result.errors)
    # the survivor finished: more steps than the crashed worker managed,
    # fewer than a clean two-worker run
    assert 6 <= result.total_iterations < 12
    # accounting comes from the surviving worker's close frame only
    assert result.samples_processed == 6 * 16
    assert 0.0 <= result.final_accuracy <= 1.0


def test_clean_run_reports_no_errors(tiny_dataset, tiny_model_factory):
    trainer = make_trainer(tiny_dataset, tiny_model_factory, iters=4)
    result = trainer.run()
    assert result.errors == []
    assert result.total_iterations == 2 * 4
    assert result.samples_processed == 2 * 4 * 16
