"""Learning-rate schedules.

The paper decays the LR ×0.1 at fixed epochs (30/40 of 50 on CIFAR,
30/60 of 90 on ImageNet) and cites warmup [Goyal et al.] as the standard
large-batch trick (DGC uses it during the sparsity ramp).
"""

from __future__ import annotations

import math

__all__ = ["Schedule", "ConstantLR", "StepDecay", "CosineDecay", "WarmupWrapper"]


class Schedule:
    """Maps an epoch (float — fractional epochs allowed) to a learning rate."""

    def lr_at(self, epoch: float) -> float:
        raise NotImplementedError

    def __call__(self, epoch: float) -> float:
        lr = self.lr_at(epoch)
        if lr <= 0:
            raise ValueError(f"schedule produced non-positive lr {lr} at epoch {epoch}")
        return lr


class ConstantLR(Schedule):
    def __init__(self, lr: float) -> None:
        self.lr = lr

    def lr_at(self, epoch: float) -> float:
        return self.lr


class StepDecay(Schedule):
    """Multiply the base LR by ``factor`` at each milestone epoch.

    ``StepDecay(0.1, milestones=(30, 60), factor=0.1)`` reproduces the
    paper's ImageNet schedule.
    """

    def __init__(self, base_lr: float, milestones: tuple[float, ...], factor: float = 0.1) -> None:
        self.base_lr = base_lr
        self.milestones = tuple(sorted(milestones))
        self.factor = factor

    def lr_at(self, epoch: float) -> float:
        drops = sum(1 for m in self.milestones if epoch >= m)
        return self.base_lr * self.factor**drops


class CosineDecay(Schedule):
    """Cosine annealing from ``base_lr`` to ``min_lr`` over ``total_epochs``."""

    def __init__(self, base_lr: float, total_epochs: float, min_lr: float = 1e-5) -> None:
        self.base_lr = base_lr
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def lr_at(self, epoch: float) -> float:
        t = min(max(epoch / self.total_epochs, 0.0), 1.0)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + math.cos(math.pi * t))


class WarmupWrapper(Schedule):
    """Linear warmup from ``warmup_factor``·lr to the inner schedule's lr."""

    def __init__(self, inner: Schedule, warmup_epochs: float, warmup_factor: float = 0.1) -> None:
        if warmup_epochs < 0:
            raise ValueError("warmup_epochs must be non-negative")
        self.inner = inner
        self.warmup_epochs = warmup_epochs
        self.warmup_factor = warmup_factor

    def lr_at(self, epoch: float) -> float:
        base = self.inner.lr_at(epoch)
        if self.warmup_epochs == 0 or epoch >= self.warmup_epochs:
            return base
        alpha = epoch / self.warmup_epochs
        scale = self.warmup_factor + (1.0 - self.warmup_factor) * alpha
        return base * scale
