"""Backend-matrix smoke: run a tiny workload on every registered backend.

Usage::

    python -m repro.exec                       # all backends, dgs
    python -m repro.exec --backends threaded,sync --method asgd
    python -m repro.exec --iters 60 --workers 3

Each run is validated against the unified ``TrainResult`` schema
(:func:`repro.exec.validate_result`, including the backend's declared
``measures``) and must actually learn; the exit code is non-zero on any
violation.  ``make backend-matrix`` and CI call this.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..core.methods import Hyper
from ..data.synthetic import make_blobs
from ..nn.models.mlp import MLP
from .backend import get_backend, list_backends
from .config import RunConfig
from .result import validate_result


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.exec", description=__doc__)
    parser.add_argument(
        "--backends",
        default=",".join(list_backends()),
        help="comma-separated backend names (default: every registered backend)",
    )
    parser.add_argument("--method", default="dgs")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--iters", type=int, default=40, help="global iteration budget")
    parser.add_argument(
        "--min-accuracy",
        type=float,
        default=0.5,
        help="fail a backend whose final accuracy is below this (blobs chance is 0.25)",
    )
    args = parser.parse_args(argv)

    dataset = make_blobs(n_samples=400, num_classes=4, dim=12, sep=2.5, noise=0.8, seed=1)
    config = RunConfig(
        args.method,
        lambda: MLP(12, (24,), 4, seed=7),
        dataset,
        num_workers=args.workers,
        batch_size=16,
        total_iterations=args.iters,
        hyper=Hyper(lr=0.1, momentum=0.7, ratio=0.1, min_sparse_size=0),
        seed=0,
    )

    failures = 0
    header = f"{'backend':10s} {'clock':8s} {'acc':>7s} {'staleness':>9s} {'up-bytes':>10s} {'ratio':>6s} {'real':>6s}"
    print(header)
    print("-" * len(header))
    for name in [b.strip() for b in args.backends.split(",") if b.strip()]:
        backend = get_backend(name)
        t0 = time.perf_counter()
        result = backend.run(config)
        elapsed = time.perf_counter() - t0
        problems = validate_result(result, measures=backend.measures)
        if result.backend != backend.name:
            problems.append(f"result.backend={result.backend!r} != {backend.name!r}")
        if result.clock != backend.clock:
            problems.append(f"result.clock={result.clock!r} != {backend.clock!r}")
        if result.final_accuracy < args.min_accuracy:
            problems.append(
                f"final_accuracy={result.final_accuracy:.3f} < {args.min_accuracy} (did not learn)"
            )
        print(
            f"{name:10s} {result.clock or '-':8s} {100 * result.final_accuracy:6.2f}% "
            f"{result.mean_staleness:9.2f} {result.upload_bytes:10,d} "
            f"{result.compression_ratio:6.1f} {elapsed:5.1f}s"
        )
        for p in problems:
            print(f"  schema violation [{name}]: {p}", file=sys.stderr)
        failures += len(problems)

    if failures:
        print(f"backend-matrix: {failures} violation(s)", file=sys.stderr)
        return 1
    print("backend-matrix: all backends conform to the TrainResult schema")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
