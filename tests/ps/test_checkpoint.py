"""Checkpoint format + restore semantics, and the bitwise-continuation pin.

The flat-buffer file (``b"DGSC"`` + JSON header + raw buffers) must
round-trip the *exact* server state — M, every v_k, t, prev — so a run
restored from a checkpoint and continued is bitwise-identical to the
uninterrupted run. That end-to-end property is pinned here on the
threaded engine (socket parity has its own integration module).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.layerops import parameters_of
from repro.core.methods import Hyper, get_method
from repro.exec.common import build_server
from repro.nn import MLP
from repro.ps.checkpoint import CHECKPOINT_MAGIC, load_checkpoint, save_checkpoint
from repro.ps.messages import GradientMessage
from repro.ps.threaded import ThreadedTrainer


def _server(num_workers=2, arena=False, num_shards=1, method="dgs"):
    model = MLP(8, (12,), 3, seed=4)
    return build_server(
        get_method(method),
        parameters_of(model),
        num_workers,
        Hyper(lr=0.1, momentum=0.7, ratio=0.25, min_sparse_size=0),
        arena=arena,
        num_shards=num_shards,
    )


def _advance(server, steps=3, worker=0):
    rng = np.random.default_rng(7)
    for i in range(steps):
        payload = {
            name: rng.normal(size=np.shape(buf)).astype(np.float64)
            for name, buf in server.global_model().items()
        }
        server.handle(GradientMessage(worker, payload, i))


def _flat_state(server):
    if hasattr(server, "shards"):
        return [b.copy() for s in server.checkpoint_state()["shards"] for b in s["buffers"]]
    return [b.copy() for b in server.checkpoint_state()["buffers"]]


@pytest.mark.parametrize(
    "arena,num_shards",
    [(False, 1), (True, 1), (False, 2), (True, 2)],
    ids=["dict", "arena", "dict-sharded", "arena-sharded"],
)
def test_roundtrip_restores_state_bitwise(tmp_path, arena, num_shards):
    source = _server(arena=arena, num_shards=num_shards)
    _advance(source, steps=4)
    path = tmp_path / "state.ckpt"
    header = save_checkpoint(source, path)
    assert header["num_shards"] == num_shards

    target = _server(arena=arena, num_shards=num_shards)
    load_checkpoint(target, path)
    assert target.timestamp == source.timestamp
    for got, want in zip(_flat_state(target), _flat_state(source)):
        np.testing.assert_array_equal(got, want)
    got_model, want_model = target.global_model(), source.global_model()
    for name in want_model:
        np.testing.assert_array_equal(got_model[name], want_model[name])


def test_header_records_per_worker_update_counts(tmp_path):
    server = _server()
    _advance(server, steps=3, worker=0)
    _advance(server, steps=2, worker=1)
    header = save_checkpoint(server, tmp_path / "c.ckpt")
    assert header["shards"][0]["updates"] == {"0": 3, "1": 2}


def test_restore_into_fresh_server_grows_worker_set(tmp_path):
    """A checkpoint taken after elastic joins restores into a server built
    with the original (smaller) worker count."""
    source = _server(num_workers=1)
    _advance(source)
    source.bootstrap_worker(2)  # elastic join grew v to 3 workers
    save_checkpoint(source, tmp_path / "c.ckpt")
    target = _server(num_workers=1)
    load_checkpoint(target, tmp_path / "c.ckpt")
    assert target.tracker.num_workers == 3
    for got, want in zip(_flat_state(target), _flat_state(source)):
        np.testing.assert_array_equal(got, want)


class TestValidation:
    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(b"NOPE" + b"\x00" * 32)
        with pytest.raises(ValueError, match="bad magic"):
            load_checkpoint(_server(), path)

    def test_truncated_body_rejected(self, tmp_path):
        path = tmp_path / "c.ckpt"
        server = _server()
        _advance(server)
        save_checkpoint(server, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 16])
        with pytest.raises(ValueError, match="truncated"):
            load_checkpoint(_server(), path)

    def test_shard_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_checkpoint(_server(num_shards=2), path)
        with pytest.raises(ValueError, match="shard"):
            load_checkpoint(_server(num_shards=1), path)

    def test_wrong_model_rejected(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_checkpoint(_server(), path)
        other = build_server(
            get_method("dgs"),
            parameters_of(MLP(8, (20,), 3, seed=4)),  # different hidden width
            2,
            Hyper(ratio=0.25, min_sparse_size=0),
        )
        with pytest.raises(ValueError):
            load_checkpoint(other, path)

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_checkpoint(_server(), path)
        assert [p.name for p in tmp_path.iterdir()] == ["c.ckpt"]


def _trainer(tiny_dataset, tiny_model_factory, iterations, **kwargs):
    return ThreadedTrainer(
        "asgd",  # momentum=0: worker optimiser state is not checkpointed
        tiny_model_factory,
        tiny_dataset,
        num_workers=1,
        batch_size=16,
        iterations_per_worker=iterations,
        hyper=Hyper(lr=0.1, momentum=0.0),
        seed=0,
        **kwargs,
    )


def test_restore_continue_is_bitwise_equal_to_uninterrupted(
    tmp_path, tiny_dataset, tiny_model_factory
):
    """checkpoint → restore → continue == one uninterrupted run, bitwise."""
    full = _trainer(tiny_dataset, tiny_model_factory, 20).run()

    path = tmp_path / "mid.ckpt"
    first = _trainer(
        tiny_dataset, tiny_model_factory, 10, checkpoint_every=10, checkpoint_path=path
    ).run()
    resumed = _trainer(tiny_dataset, tiny_model_factory, 10, restore_from=path).run()

    # the continuation's losses are exactly the tail of the full run
    assert list(first.loss_vs_step.ys) == list(full.loss_vs_step.ys)[:10]
    assert list(resumed.loss_vs_step.ys) == list(full.loss_vs_step.ys)[10:]
    assert resumed.final_loss == full.final_loss
    assert resumed.final_accuracy == full.final_accuracy
